module Schedule = Rcbr_core.Schedule
module Events = Rcbr_queue.Events
module Rng = Rcbr_util.Rng
module Topology = Rcbr_net.Topology
module Link = Rcbr_net.Link
module Session = Rcbr_net.Session
module Service_model = Rcbr_policy.Service_model

type config = {
  schedule : Rcbr_core.Schedule.t;
  hops : int;
  capacity_per_hop : float;
  transit_calls : int;
  local_calls_per_hop : int;
  horizon : float;
  seed : int;
}

type balanced_config = {
  base : config;
  routes : int;  (** parallel alternative paths, each [hops] long *)
  balance : bool;  (** least-loaded route choice vs uniform random *)
}

type net_config = {
  schedule : Rcbr_core.Schedule.t;
  topology : Topology.t;
  transit_calls : int;  (** spread across the topology's routes *)
  local_calls_per_link : int;  (** single-hop cross traffic on every link *)
  horizon : float;
  seed : int;
  balance : bool;
  service : Service_model.t;
}

type metrics = {
  transit_attempts : int;
  transit_denials : int;
  local_attempts : int;
  local_denials : int;
  downgrades : int;
  mean_hop_utilization : float;
}

type fault_metrics = {
  rm_lost : int;  (** signalling cells the fault plane swallowed *)
  retransmits : int;
  abandoned : int;  (** rate changes applied only after give-up *)
  superseded : int;  (** retransmissions cancelled by a newer change *)
  crash_denials : int;  (** denials caused purely by a crashed hop *)
  invariant_failures : int;
}

let denial_fraction m =
  if m.transit_attempts = 0 then 0.
  else float_of_int m.transit_denials /. float_of_int m.transit_attempts

let run_net (nc : net_config) fc =
  let topo = nc.topology in
  let n_links = Topology.n_links topo in
  assert (nc.horizon > 0.);
  assert (nc.transit_calls >= 1 && nc.local_calls_per_link >= 0);
  Session.validate fc;
  Service_model.validate nc.service;
  let rng = Rng.create nc.seed in
  (* Fault randomness is a separate stream inside the plane, so a null
     fault spec reproduces the fault-free run bit for bit. *)
  let plane = Session.plane ~drop:Session.Per_link fc in
  let counters = plane.Session.counters in
  let engine = Events.create () in
  let links = Link.of_topology ~crashes:fc.Session.crashes topo in
  let sessions = ref [] in
  let util_integral = ref 0. and last = ref 0. in
  let advance now =
    let dt = now -. !last in
    if dt > 0. then begin
      let acc = ref 0. in
      Array.iter
        (fun l ->
          acc := !acc +. Float.min 1. (l.Link.demand /. l.Link.capacity))
        links;
      util_integral := !util_integral +. (!acc /. float_of_int n_links *. dt);
      last := now
    end
  in
  let transit_attempts = ref 0 and transit_denials = ref 0 in
  let local_attempts = ref 0 and local_denials = ref 0 in
  let downgrades = ref 0 in
  let applies = ref 0 in
  let n_slots = Schedule.n_slots nc.schedule in
  let check_invariant () =
    counters.Session.invariant_failures <-
      counters.Session.invariant_failures
      + Session.audit ~links ~sessions:!sessions
  in
  (* Demand is the *desired* rate (settle semantics): a denied increase
     is counted and the demand still rises — the overload shows up in
     the utilization cap. *)
  let apply_change t rate ~now ~count =
    (match nc.service with
    | Service_model.Renegotiate ->
        (* The seed's expressions, verbatim (bit-identity anchor for
           the service-model refactor, DESIGN.md §15). *)
        if count && rate > t.Session.applied then begin
          if t.Session.transit then incr transit_attempts
          else incr local_attempts;
          if not (Session.fits ~links t ~rate ~now) then begin
            if t.Session.transit then incr transit_denials
            else incr local_denials;
            if Session.blocked ~links t ~now then
              counters.Session.crash_denials <-
                counters.Session.crash_denials + 1
          end
        end;
        Session.settle ~links t ~rate
    | _ ->
        let decision = Session.decide nc.service ~links t ~now ~demanded:rate in
        let granted = Service_model.granted_rate decision ~demanded:rate in
        if count && rate > t.Session.applied then begin
          if t.Session.transit then incr transit_attempts
          else incr local_attempts;
          if Service_model.downgraded decision then begin
            incr downgrades;
            match decision with
            | Service_model.Settle_floor _ ->
                if t.Session.transit then incr transit_denials
                else incr local_denials;
                if Session.blocked ~links t ~now then
                  counters.Session.crash_denials <-
                    counters.Session.crash_denials + 1
            | _ -> ()
          end
        end;
        Session.settle ~links t ~rate:granted);
    if fc.Session.check_invariants then begin
      incr applies;
      if !applies mod 64 = 0 then check_invariant ()
    end
  in
  let driver =
    {
      Session.plane_ = Some plane;
      reliable_setup = false;
      lifetime = Session.Hold_until nc.horizon;
      before = (fun ~now -> advance now);
      on_attempt = (fun ~now:_ -> ());
      retry =
        (fun ~now ->
          now <= nc.horizon
          && begin
               advance now;
               true
             end);
      deliver =
        (fun t ~now ~idx:_ ~rate -> apply_change t rate ~now ~count:true);
    }
  in
  let start_call ~route ~transit =
    let shift = Rng.int rng n_slots in
    let pieces = Mbac.shifted_pieces nc.schedule ~shift in
    let t = Session.make ~id:0 ~route ~transit in
    sessions := t :: !sessions;
    (* Reserve the setup rate immediately so later placement decisions
       (the load balancer) see it; the first piece event is then a
       no-op rate-wise.  Call setup is signalled reliably and is not a
       renegotiation attempt. *)
    apply_change t (snd pieces.(0)) ~now:0. ~count:false;
    (* Desynchronize call starts within the first pieces. *)
    let offset = Rng.float rng in
    Events.schedule engine ~at:offset (Session.play driver t pieces 0)
  in
  let route_load route =
    Array.fold_left (fun acc id -> acc +. links.(id).Link.demand) 0. route
  in
  let pick_route () =
    if not nc.balance then Rng.int rng (Topology.n_routes topo)
    else begin
      (* Call-level load balancing: the least-loaded alternative. *)
      let best = ref 0 in
      for r = 1 to Topology.n_routes topo - 1 do
        if
          route_load topo.Topology.routes.(r)
          < route_load topo.Topology.routes.(!best)
        then best := r
      done;
      !best
    end
  in
  (* Interleave transit starts with tiny local warm-up so the balancer
     sees evolving loads; all calls start within the first second. *)
  for _ = 1 to nc.transit_calls do
    let r = pick_route () in
    start_call ~route:topo.Topology.routes.(r) ~transit:true
  done;
  for id = 0 to n_links - 1 do
    for _ = 1 to nc.local_calls_per_link do
      start_call ~route:[| id |] ~transit:false
    done
  done;
  (* [advance_to] (not bare [run ~until]) so the engine clock lands on
     the horizon rather than the last fired event; the utilization
     integral below closes its own window with [advance]. *)
  Events.advance_to engine ~at:nc.horizon;
  advance nc.horizon;
  if fc.Session.check_invariants then check_invariant ();
  ( {
      transit_attempts = !transit_attempts;
      transit_denials = !transit_denials;
      local_attempts = !local_attempts;
      local_denials = !local_denials;
      downgrades = !downgrades;
      mean_hop_utilization = !util_integral /. nc.horizon;
    },
    {
      rm_lost = counters.Session.rm_lost;
      retransmits = counters.Session.retransmits;
      abandoned = counters.Session.abandoned;
      superseded = counters.Session.superseded;
      crash_denials = counters.Session.crash_denials;
      invariant_failures = counters.Session.invariant_failures;
    } )

let run_faulty bc fc =
  let c = bc.base in
  assert (c.hops >= 1 && c.capacity_per_hop > 0. && c.horizon > 0.);
  assert (c.transit_calls >= 1 && c.local_calls_per_hop >= 0);
  assert (bc.routes >= 1);
  let topology =
    Topology.parallel_routes ~routes:bc.routes ~hops:c.hops
      ~capacity:c.capacity_per_hop
  in
  (* The historical fault record names hops; the blackout applies to
     that hop on every route.  Expand to link ids for the general core
     (the historical hop-range filter included). *)
  let crashes =
    List.concat_map
      (fun (h, a, r) ->
        if h >= 0 && h < c.hops then
          List.init bc.routes (fun rt -> ((rt * c.hops) + h, a, r))
        else [])
      fc.Session.crashes
  in
  run_net
    {
      schedule = c.schedule;
      topology;
      transit_calls = c.transit_calls;
      local_calls_per_link = c.local_calls_per_hop;
      horizon = c.horizon;
      seed = c.seed;
      balance = bc.balance;
      service = Service_model.Renegotiate;
    }
    { fc with crashes }

let run_balanced bc = fst (run_faulty bc Session.no_faults)
let run c = run_balanced { base = c; routes = 1; balance = false }

(* Hop-sweep batch: each config is an independent seeded simulation. *)
let run_many ?pool configs = Rcbr_util.Pool.map ?pool run configs
