module Schedule = Rcbr_core.Schedule
module Events = Rcbr_queue.Events
module Rng = Rcbr_util.Rng
module Invariant = Rcbr_fault.Invariant

type config = {
  schedule : Rcbr_core.Schedule.t;
  hops : int;
  capacity_per_hop : float;
  transit_calls : int;
  local_calls_per_hop : int;
  horizon : float;
  seed : int;
}

type balanced_config = {
  base : config;
  routes : int;  (** parallel alternative paths, each [hops] long *)
  balance : bool;  (** least-loaded route choice vs uniform random *)
}

type faults = {
  rm_drop : float;  (** per-hop loss probability of a signalling cell *)
  retx_timeout : float;  (** seconds before a lost request is re-sent *)
  max_retransmits : int;  (** per rate change, before applying anyway *)
  crashes : (int * float * float) list;
      (** (hop, at, recover): during the window the hop (on every
          route) is a signalling blackout — all increases through it
          are denied *)
  fault_seed : int;
  check_invariants : bool;
      (** audit demand = sum of call rates as the simulation runs *)
}

let no_faults =
  {
    rm_drop = 0.;
    retx_timeout = 0.25;
    max_retransmits = 4;
    crashes = [];
    fault_seed = 0;
    check_invariants = false;
  }

type metrics = {
  transit_attempts : int;
  transit_denials : int;
  local_attempts : int;
  local_denials : int;
  mean_hop_utilization : float;
}

type fault_metrics = {
  rm_lost : int;  (** signalling cells the fault plan swallowed *)
  retransmits : int;
  abandoned : int;  (** rate changes applied only after give-up *)
  superseded : int;  (** retransmissions cancelled by a newer change *)
  crash_denials : int;  (** denials caused purely by a crashed hop *)
  invariant_failures : int;
}

let denial_fraction m =
  if m.transit_attempts = 0 then 0.
  else float_of_int m.transit_denials /. float_of_int m.transit_attempts

(* A call's route is a list of (route index, hop index) links. *)
type call = {
  links : (int * int) list;
  mutable rate : float;
  transit : bool;
  mutable gen : int;  (* bumped per rate change; cancels stale retransmits *)
}

let run_faulty bc fc =
  let c = bc.base in
  assert (c.hops >= 1 && c.capacity_per_hop > 0. && c.horizon > 0.);
  assert (c.transit_calls >= 1 && c.local_calls_per_hop >= 0);
  assert (bc.routes >= 1);
  assert (fc.rm_drop >= 0. && fc.rm_drop <= 1.);
  assert (fc.retx_timeout > 0. && fc.max_retransmits >= 0);
  let rng = Rng.create c.seed in
  (* Fault randomness is a separate stream so that a null fault spec
     reproduces the fault-free run bit for bit. *)
  let frng = Rng.create fc.fault_seed in
  let engine = Events.create () in
  let demand = Array.init bc.routes (fun _ -> Array.make c.hops 0.) in
  let calls = ref [] in
  let util_integral = ref 0. and last = ref 0. in
  let advance now =
    let dt = now -. !last in
    if dt > 0. then begin
      let acc = ref 0. in
      Array.iter
        (Array.iter (fun d -> acc := !acc +. Float.min 1. (d /. c.capacity_per_hop)))
        demand;
      util_integral :=
        !util_integral +. (!acc /. float_of_int (bc.routes * c.hops) *. dt);
      last := now
    end
  in
  let transit_attempts = ref 0 and transit_denials = ref 0 in
  let local_attempts = ref 0 and local_denials = ref 0 in
  let rm_lost = ref 0 and retransmits = ref 0 in
  let abandoned = ref 0 and superseded = ref 0 in
  let crash_denials = ref 0 and invariant_failures = ref 0 in
  let applies = ref 0 in
  let n_slots = Schedule.n_slots c.schedule in
  (* The fault plan is fixed for the whole run, so compile the crash
     list into per-hop start-sorted arrays of merged [at, recover)
     blackout windows once: the per-renegotiation liveness check is
     then a binary search over that hop's windows instead of a scan of
     the whole plan on every hop of every attempt.  Merging overlapping
     windows keeps the membership test equal to the original
     [List.exists]. *)
  let crash_table =
    let tbl = Array.make c.hops [||] in
    if fc.crashes <> [] then begin
      let per_hop = Array.make c.hops [] in
      List.iter
        (fun (h, a, r) ->
          if h >= 0 && h < c.hops && r > a then
            per_hop.(h) <- (a, r) :: per_hop.(h))
        fc.crashes;
      Array.iteri
        (fun h windows ->
          let windows = List.sort compare windows in
          let merged =
            List.fold_left
              (fun acc (a, r) ->
                match acc with
                | (a0, r0) :: rest when a <= r0 ->
                    (a0, Float.max r0 r) :: rest
                | _ -> (a, r) :: acc)
              [] windows
          in
          tbl.(h) <- Array.of_list (List.rev merged))
        per_hop
    end;
    tbl
  in
  let hop_down h now =
    let windows = crash_table.(h) in
    let n = Array.length windows in
    n > 0
    && begin
         (* Rightmost window starting at or before [now]. *)
         let lo = ref 0 and hi = ref n in
         while !lo < !hi do
           let mid = (!lo + !hi) / 2 in
           if fst windows.(mid) <= now then lo := mid + 1 else hi := mid
         done;
         !lo > 0 && now < snd windows.(!lo - 1)
       end
  in
  let fits call new_rate ~now =
    let delta = new_rate -. call.rate in
    List.for_all
      (fun (r, h) ->
        (not (hop_down h now))
        && demand.(r).(h) +. delta <= c.capacity_per_hop +. 1e-9)
      call.links
  in
  let crash_blocked call ~now =
    List.exists (fun (_, h) -> hop_down h now) call.links
  in
  (* Audit: every link's demand must equal the sum of the rates of the
     calls crossing it — conservation of (desired) bandwidth under any
     interleaving of changes, retransmissions and give-ups. *)
  let check_invariant () =
    let expect = Array.init bc.routes (fun _ -> Array.make c.hops 0.) in
    List.iter
      (fun call ->
        List.iter
          (fun (r, h) -> expect.(r).(h) <- expect.(r).(h) +. call.rate)
          call.links)
      !calls;
    let views =
      Array.init (bc.routes * c.hops) (fun i ->
          let r = i / c.hops and h = i mod c.hops in
          {
            Invariant.index = i;
            capacity = c.capacity_per_hop;
            reserved = demand.(r).(h);
            (* One pseudo-VCI holding the recomputed expectation: the
               checker then flags aggregate/sum mismatches for us. *)
            vci_rates = Some [ (0, expect.(r).(h)) ];
          })
    in
    invariant_failures :=
      !invariant_failures
      + List.length (Invariant.check ~check_capacity:false views)
  in
  let apply_change call rate ~now ~count =
    if count && rate > call.rate then begin
      if call.transit then incr transit_attempts else incr local_attempts;
      if not (fits call rate ~now) then begin
        if call.transit then incr transit_denials else incr local_denials;
        if crash_blocked call ~now then incr crash_denials
      end
    end;
    let delta = rate -. call.rate in
    List.iter (fun (r, h) -> demand.(r).(h) <- demand.(r).(h) +. delta) call.links;
    call.rate <- rate;
    if fc.check_invariants then begin
      incr applies;
      if !applies mod 64 = 0 then check_invariant ()
    end
  in
  (* One transmission attempt of the rate-change cell across the call's
     links; a drop anywhere loses it and arms a retransmission, which a
     newer change (next piece) supersedes. *)
  let rec signal call rate gen ~retx engine =
    let now = Events.now engine in
    let lost =
      fc.rm_drop > 0.
      && List.exists (fun _ -> Rng.float frng < fc.rm_drop) call.links
    in
    if not lost then apply_change call rate ~now ~count:true
    else begin
      incr rm_lost;
      if retx >= fc.max_retransmits then begin
        (* Give up signalling and settle on the desired demand anyway:
           the overload shows up in the utilization cap, as for a denied
           increase. *)
        incr abandoned;
        apply_change call rate ~now ~count:true
      end
      else
        Events.schedule_after engine ~delay:fc.retx_timeout (fun engine ->
            let now = Events.now engine in
            if call.gen <> gen then incr superseded
            else if now <= c.horizon then begin
              advance now;
              incr retransmits;
              signal call rate gen ~retx:(retx + 1) engine
            end)
    end
  in
  (* Each call loops over its shifted pieces for the whole horizon.
     Demand is the *desired* rate (settle semantics): a denied increase
     is counted and the demand still rises — the overload shows up in
     the utilization cap. *)
  let rec piece_event call pieces idx engine =
    let now = Events.now engine in
    if now <= c.horizon then begin
      advance now;
      let idx = if idx >= Array.length pieces then 0 else idx in
      let duration, rate = pieces.(idx) in
      call.gen <- call.gen + 1;
      signal call rate call.gen ~retx:0 engine;
      Events.schedule_after engine ~delay:duration
        (piece_event call pieces (idx + 1))
    end
  in
  let start_call ~links ~transit =
    let shift = Rng.int rng n_slots in
    let pieces = Mbac.shifted_pieces c.schedule ~shift in
    let call = { links; rate = 0.; transit; gen = 0 } in
    calls := call :: !calls;
    (* Reserve the setup rate immediately so later placement decisions
       (the load balancer) see it; the first piece event is then a
       no-op rate-wise.  Call setup is signalled reliably and is not a
       renegotiation attempt. *)
    apply_change call (snd pieces.(0)) ~now:0. ~count:false;
    (* Desynchronize call starts within the first pieces. *)
    let offset = Rng.float rng in
    Events.schedule engine ~at:offset (piece_event call pieces 0)
  in
  let route_load r = Array.fold_left ( +. ) 0. demand.(r) in
  let pick_route () =
    if not bc.balance then Rng.int rng bc.routes
    else begin
      (* Call-level load balancing: the least-loaded alternative. *)
      let best = ref 0 in
      for r = 1 to bc.routes - 1 do
        if route_load r < route_load !best then best := r
      done;
      !best
    end
  in
  (* Interleave transit starts with tiny local warm-up so the balancer
     sees evolving loads; all calls start within the first second. *)
  for _ = 1 to c.transit_calls do
    let r = pick_route () in
    let links = List.init c.hops (fun h -> (r, h)) in
    start_call ~links ~transit:true
  done;
  for r = 0 to bc.routes - 1 do
    for h = 0 to c.hops - 1 do
      for _ = 1 to c.local_calls_per_hop do
        start_call ~links:[ (r, h) ] ~transit:false
      done
    done
  done;
  Events.run ~until:c.horizon engine;
  advance c.horizon;
  if fc.check_invariants then check_invariant ();
  ( {
      transit_attempts = !transit_attempts;
      transit_denials = !transit_denials;
      local_attempts = !local_attempts;
      local_denials = !local_denials;
      mean_hop_utilization = !util_integral /. c.horizon;
    },
    {
      rm_lost = !rm_lost;
      retransmits = !retransmits;
      abandoned = !abandoned;
      superseded = !superseded;
      crash_denials = !crash_denials;
      invariant_failures = !invariant_failures;
    } )

let run_balanced bc = fst (run_faulty bc no_faults)
let run c = run_balanced { base = c; routes = 1; balance = false }

(* Hop-sweep batch: each config is an independent seeded simulation. *)
let run_many ?pool configs = Rcbr_util.Pool.map ?pool run configs
