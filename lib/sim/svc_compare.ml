module Events = Rcbr_queue.Events
module Rng = Rcbr_util.Rng
module Topology = Rcbr_net.Topology
module Link = Rcbr_net.Link
module Session = Rcbr_net.Session
module Controller = Rcbr_admission.Controller
module Descriptor = Rcbr_admission.Descriptor
module Service_model = Rcbr_policy.Service_model
module Mts = Rcbr_policy.Mts

type config = {
  rows : int;
  cols : int;
  capacity : float;
  calls : int;
  levels : float array;
  mean_hold : float;
  pieces_per_call : int;
  arrival_window : float;
  admit_margin : float;
  target : float;
  tiers : int;
  mts_scales : int;
  mts_quantum : float;
  seed : int;
}

let default () =
  {
    rows = 4;
    cols = 4;
    capacity = 6_000_000.;
    calls = 384;
    levels = [| 64_000.; 256_000.; 1_024_000. |];
    mean_hold = 5.;
    pieces_per_call = 6;
    arrival_window = 30.;
    admit_margin = 0.9;
    target = 1e-6;
    tiers = 4;
    mts_scales = 3;
    mts_quantum = 4.;
    seed = 42;
  }

type model_metrics = {
  model : string;
  arrivals : int;
  admitted : int;
  blocked : int;
  reneg_attempts : int;
  reneg_denied : int;
  downgrades : int;
  upgrades : int;
  departures : int;
  blocking_probability : float;
  downgrade_probability : float;
  mean_utilization : float;
  smg : float;
  jain_fairness : float;
  decision_hash : int;
  outcome_hash : int;
  audit_violations : int;
}

type metrics = { models : model_metrics array }

(* One pre-generated call: arrival time, route index, and the
   (duration, rate) pieces it will demand.  The workload is drawn once
   and replayed verbatim by every service model, so the comparison
   differs only in what the model grants. *)
type call = { at : float; route : int; pieces : (float * float) array }

let mean_level c =
  Array.fold_left ( +. ) 0. c.levels /. float_of_int (Array.length c.levels)

let peak_level c = Array.fold_left Float.max 0. c.levels

let workload c ~n_routes =
  let rng = Rng.create c.seed in
  Array.init c.calls (fun _ ->
      let at = Rng.float_range rng 0. c.arrival_window in
      let route = Rng.int rng n_routes in
      let pieces =
        Array.init c.pieces_per_call (fun _ ->
            let duration = Rng.exponential rng (1. /. c.mean_hold) in
            let rate = c.levels.(Rng.int rng (Array.length c.levels)) in
            (duration, rate))
      in
      { at; route; pieces })

let validate c =
  assert (c.rows >= 2 && c.cols >= 2);
  assert (c.capacity > 0.);
  assert (c.calls >= 1 && c.pieces_per_call >= 1);
  assert (Array.length c.levels >= 2);
  Array.iter (fun r -> assert (r > 0.)) c.levels;
  assert (c.mean_hold > 0. && c.arrival_window > 0.);
  assert (c.admit_margin > 0. && c.target > 0. && c.target < 1.);
  assert (c.tiers >= 2 && c.mts_scales >= 1 && c.mts_quantum > 0.)

(* The three contenders, ladders derived from the workload's own rate
   levels (no trellis schedule here; megacall does the same). *)
let models c =
  let sorted = Array.copy c.levels in
  Array.sort compare sorted;
  let lo = sorted.(0) and hi = sorted.(Array.length sorted - 1) in
  let tiers =
    Array.init c.tiers (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (c.tiers - 1)))
  in
  [|
    Service_model.Renegotiate;
    Service_model.Downgrade { tiers };
    Service_model.Mts_profile
      (Mts.ladder ~scales:c.mts_scales ~quantum:c.mts_quantum
         ~mean:(mean_level c) ~peak:hi);
  |]

let fnv h v = (h lxor v) * 0x100000001b3 land max_int
let fnv_float h x = fnv h (Int64.to_int (Int64.bits_of_float x) land max_int)

let jain xs =
  let n = Array.length xs in
  if n = 0 then 1.
  else begin
    let s = Array.fold_left ( +. ) 0. xs in
    let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
    if s2 <= 0. then 0. else s *. s /. (float_of_int n *. s2)
  end

let run_model c topo (calls : call array) model =
  Service_model.validate model;
  let links = Link.of_topology topo in
  let n_links = Topology.n_links topo in
  let descriptor =
    let sorted =
      List.sort_uniq compare (Array.to_list c.levels) |> Array.of_list
    in
    let n = Array.length sorted in
    Descriptor.create ~levels:sorted
      ~fractions:(Array.make n (1. /. float_of_int n))
  in
  let ctrl =
    Controller.perfect ~descriptor
      ~capacity:(c.admit_margin *. mean_level c *. float_of_int c.calls)
      ~target:c.target
  in
  Controller.set_service ctrl model;
  let engine = Events.create () in
  let admitted = ref 0 and blocked = ref 0 in
  let reneg_attempts = ref 0 and reneg_denied = ref 0 in
  let downgrades = ref 0 and upgrades = ref 0 and departures = ref 0 in
  let granted_bits = Array.make c.calls 0. in
  let demanded_bits = Array.make c.calls 0. in
  let last = Array.make c.calls 0. in
  let active = ref [] and everyone = ref [] in
  let util_integral = ref 0. and util_last = ref 0. in
  let advance now =
    let dt = now -. !util_last in
    if dt > 0. then begin
      let acc = ref 0. in
      Array.iter
        (fun l ->
          acc := !acc +. Float.min 1. (l.Link.demand /. l.Link.capacity))
        links;
      util_integral := !util_integral +. (!acc /. float_of_int n_links *. dt);
      util_last := now
    end
  in
  (* Per-flow fairness accounting: integrate granted (applied) and
     demanded bits between rate-change points. *)
  let accrue i (s : Session.t) ~now =
    let dt = now -. last.(i) in
    if dt > 0. then begin
      granted_bits.(i) <- granted_bits.(i) +. (s.Session.applied *. dt);
      demanded_bits.(i) <-
        demanded_bits.(i) +. (Float.max s.Session.applied s.Session.demanded *. dt);
      last.(i) <- now
    end
  in
  let upgrade_scan ~now =
    match model with
    | Service_model.Downgrade _ ->
        List.iter
          (fun (s : Session.t) ->
            match Session.try_upgrade model ~links s ~now with
            | None -> ()
            | Some r ->
                accrue s.Session.id s ~now;
                Session.settle ~links s ~rate:r;
                Controller.on_renegotiate ctrl ~now ~call:s.Session.id ~rate:r;
                incr upgrades)
          (List.sort
             (fun (a : Session.t) (b : Session.t) ->
               compare a.Session.id b.Session.id)
             !active)
    | _ -> ()
  in
  let depart (s : Session.t) i engine =
    let now = Events.now engine in
    advance now;
    accrue i s ~now;
    Session.settle ~links s ~rate:0.;
    s.Session.demanded <- 0.;
    Controller.on_depart ctrl ~now ~call:i;
    active := List.filter (fun (t : Session.t) -> t.Session.id <> i) !active;
    incr departures;
    upgrade_scan ~now
  in
  let change (s : Session.t) i rate engine =
    let now = Events.now engine in
    advance now;
    accrue i s ~now;
    let increase = rate > s.Session.applied in
    if increase then incr reneg_attempts;
    let decision = Session.decide model ~links s ~now ~demanded:rate in
    let granted = Service_model.granted_rate decision ~demanded:rate in
    (* Renegotiation failure (the paper's headline price): an increase
       the route cannot absorb.  [Downgrade] converts the failure into
       a ladder floor; the other models settle it anyway and the
       overload shows in the utilization cap. *)
    (if Service_model.downgraded decision then begin
       incr downgrades;
       match decision with
       | Service_model.Settle_floor _ -> if increase then incr reneg_denied
       | _ -> ()
     end
     else if increase && not (Session.fits ~links s ~rate:granted ~now) then
       incr reneg_denied);
    Session.settle ~links s ~rate:granted;
    Controller.on_renegotiate ctrl ~now ~call:i ~rate:granted
  in
  let arrival i engine =
    let now = Events.now engine in
    advance now;
    let cw = calls.(i) in
    let s =
      Session.make ~id:i ~route:topo.Topology.routes.(cw.route) ~transit:true
    in
    everyone := s :: !everyone;
    let rate0 = snd cw.pieces.(0) in
    match
      Controller.decide ctrl ~now ~demanded:rate0 ~fits:(fun r ->
          Session.fits ~links s ~rate:r ~now)
    with
    | Controller.Blocked -> incr blocked
    | Controller.Admit { granted; downgraded; _ } ->
        incr admitted;
        s.Session.demanded <- rate0;
        if downgraded then incr downgrades;
        Session.settle ~links s ~rate:granted;
        Controller.on_admit ctrl ~now ~call:i ~rate:granted;
        active := s :: !active;
        last.(i) <- now;
        let t = ref now in
        Array.iteri
          (fun idx (duration, _) ->
            t := !t +. duration;
            if idx < Array.length cw.pieces - 1 then
              let rate = snd cw.pieces.(idx + 1) in
              Events.schedule engine ~at:!t (change s i rate)
            else Events.schedule engine ~at:!t (depart s i))
          cw.pieces
  in
  Array.iteri
    (fun i cw -> Events.schedule engine ~at:cw.at (arrival i))
    calls;
  Events.run engine;
  advance (Events.now engine);
  let audit_violations = Session.audit ~links ~sessions:!everyone in
  let mean_utilization =
    if Events.now engine > 0. then !util_integral /. Events.now engine else 0.
  in
  let xs =
    Array.init c.calls (fun i ->
        if demanded_bits.(i) > 0. then granted_bits.(i) /. demanded_bits.(i)
        else 0.)
  in
  let decision_hash = (Controller.stats ctrl).Controller.decision_hash in
  let outcome_hash =
    let h =
      List.fold_left fnv 0
        [
          c.calls; !admitted; !blocked; !reneg_attempts; !reneg_denied;
          !downgrades; !upgrades; !departures; decision_hash; audit_violations;
        ]
    in
    Array.fold_left (fun h l -> fnv_float h l.Link.demand) h links
  in
  {
    model = Service_model.name model;
    arrivals = c.calls;
    admitted = !admitted;
    blocked = !blocked;
    reneg_attempts = !reneg_attempts;
    reneg_denied = !reneg_denied;
    downgrades = !downgrades;
    upgrades = !upgrades;
    departures = !departures;
    blocking_probability = float_of_int !blocked /. float_of_int c.calls;
    downgrade_probability =
      (if !admitted = 0 then 0.
       else float_of_int !downgrades /. float_of_int (!admitted + !reneg_attempts));
    mean_utilization;
    smg = mean_utilization *. peak_level c /. mean_level c;
    jain_fairness = jain xs;
    decision_hash;
    outcome_hash;
    audit_violations;
  }

let run ?pool c =
  validate c;
  let topo = Topology.grid ~rows:c.rows ~cols:c.cols ~capacity:c.capacity in
  let calls = workload c ~n_routes:(Topology.n_routes topo) in
  { models = Rcbr_util.Pool.map_array ?pool (run_model c topo calls) (models c) }
