(* Million-call simulation engine.

   Scale comes from four pieces working together: the {!Rcbr_net.Store}
   struct-of-arrays session store (no per-call heap records), the
   {!Rcbr_queue.Wheel} calendar queue driven directly with integer
   session handles (no per-event closures), batched admission
   ({!Rcbr_admission.Controller.set_batched}: one solver load per tick
   mutation, O(1) repeat decisions), and link-sharding across the
   Domain {!Rcbr_util.Pool}.

   Sharding model: each shard owns a disjoint [rows x cols] grid mesh
   (its own links, store, controller, wheel and pre-split RNG) and
   simulates the same timeline independently — shard-by-link ownership
   with no cross-shard routes, so no cross-shard synchronization can
   reorder float operations.  The merge is an ordered reduction over
   the shard array returned by the order-preserving [Pool.map_array],
   making every metric and the outcome hash bit-identical for any
   [-j] (the PR 2/3 invariant).

   Timeline per shard: arrivals come in batches at tick boundaries
   (ramp quota plus replacements for departures since the previous
   tick); each admitted call schedules its renegotiations on the wheel
   at exponential holding times, walks [pieces_per_call] rate changes
   and departs.  Renegotiation events between ticks fire at their own
   event times, in exact (time, seq) order. *)

module Rng = Rcbr_util.Rng
module Pool = Rcbr_util.Pool
module Wheel = Rcbr_queue.Wheel
module Topology = Rcbr_net.Topology
module Link = Rcbr_net.Link
module Store = Rcbr_net.Store
module Controller = Rcbr_admission.Controller
module Service_model = Rcbr_policy.Service_model
module Mts = Rcbr_policy.Mts

type config = {
  shards : int;  (** independent sub-meshes, one Pool task each *)
  rows : int;
  cols : int;  (** per-shard grid (see {!Topology.grid}) *)
  calls_per_shard : int;  (** ramp target population per shard *)
  levels : float array;  (** rate levels calls renegotiate among, b/s *)
  link_load_factor : float;
      (** per-link capacity as a multiple of the expected per-link load
          at the ramp target *)
  admit_margin : float;
      (** controller capacity as a multiple of [calls * mean level] *)
  target : float;  (** admission overflow target *)
  mean_hold : float;  (** mean seconds between a call's rate changes *)
  pieces_per_call : int;  (** rate changes before departure *)
  tick : float;  (** arrival-batch period, s *)
  ramp_ticks : int;  (** ticks over which the ramp quota is spread *)
  horizon : float;  (** churn seconds simulated after the ramp *)
  seed : int;
  service : Service_model.t;  (** DESIGN.md §15; [Renegotiate] = seed *)
}

let default ~concurrent () =
  let shards = 8 in
  let calls_per_shard = (concurrent + shards - 1) / shards in
  {
    shards;
    rows = 8;
    cols = 8;
    calls_per_shard;
    levels = [| 64_000.; 256_000.; 1_024_000. |];
    link_load_factor = 1.05;
    admit_margin = 1.1;
    target = 1e-6;
    mean_hold = 50.;
    pieces_per_call = 4;
    tick = 1.;
    ramp_ticks = 8;
    horizon = 8.;
    seed = 42;
    service = Service_model.Renegotiate;
  }

type shard_metrics = {
  arrivals : int;
  admitted : int;
  admission_denied : int;
  reneg_attempts : int;
  reneg_denied : int;
  departures : int;
  events_fired : int;
  downgrades : int;
  upgrades : int;
  peak_concurrent : int;
  final_concurrent : int;
  decision_hash : int;
  batch_hits : int;
  memo_hits : int;
  audit_violations : int;
  shard_hash : int;
}

type metrics = {
  shards_ : shard_metrics array;  (** per shard, in shard order *)
  total_arrivals : int;
  total_admitted : int;
  total_denied : int;
  total_reneg_attempts : int;
  total_reneg_denied : int;
  total_departures : int;
  total_events : int;
  total_downgrades : int;
  total_upgrades : int;
  concurrent_calls : int;  (** sum of final per-shard populations *)
  peak_concurrent : int;  (** sum of per-shard peaks *)
  total_batch_hits : int;
  total_memo_hits : int;
  audit_violations : int;
  outcome_hash : int;  (** ordered FNV fold of the shard hashes *)
}

(* Both mixers are registered determinism sinks (T001) in the typed
   lint's repo config (DESIGN.md §14) — tainted values must not reach
   them, directly or folded (List.fold_left fnv ...); renaming or
   moving them must update [Tlint.repo_config]. *)
let fnv h v = (h lxor v) * 0x100000001b3 land max_int
let fnv_float h x = fnv h (Int64.to_int (Int64.bits_of_float x) land max_int)

let mean_level levels =
  Array.fold_left ( +. ) 0. levels /. float_of_int (Array.length levels)

let run_shard cfg rng =
  let topo = Topology.grid ~rows:cfg.rows ~cols:cfg.cols ~capacity:1. in
  let n_routes = Topology.n_routes topo in
  let hops = Array.fold_left ( + ) 0 (Topology.route_lengths topo) in
  let mean_route = float_of_int hops /. float_of_int n_routes in
  let mean_rate = mean_level cfg.levels in
  (* Expected per-link load at the ramp target, assuming uniform route
     choice: calls * mean_rate * mean_route_len / n_links. *)
  let n_links = Topology.n_links topo in
  let per_link =
    float_of_int cfg.calls_per_shard *. mean_rate *. mean_route
    /. float_of_int n_links
  in
  let link_capacity = cfg.link_load_factor *. per_link in
  let topo =
    Topology.grid ~rows:cfg.rows ~cols:cfg.cols ~capacity:link_capacity
  in
  let links = Link.of_topology topo in
  let store = Store.create ~capacity_hint:cfg.calls_per_shard () in
  let ctrl =
    Controller.memory
      ~capacity:
        (cfg.admit_margin *. float_of_int cfg.calls_per_shard *. mean_rate)
      ~target:cfg.target
  in
  Controller.set_batched ctrl true;
  Controller.set_service ctrl cfg.service;
  let wheel : Store.handle Wheel.t = Wheel.create () in
  let arrivals = ref 0
  and admitted = ref 0
  and admission_denied = ref 0
  and reneg_attempts = ref 0
  and reneg_denied = ref 0
  and departures = ref 0
  and events_fired = ref 0
  and downgrades = ref 0
  and upgrades = ref 0
  and peak = ref 0
  and next_id = ref 0
  and replacements = ref 0 in
  let n_levels = Array.length cfg.levels in
  let routes = (topo : Topology.t).routes in
  (* Per-call MTS policing state, handle-indexed driver-side (the SoA
     store keeps only the [demanded] scalar column). *)
  let mts_buckets = ref [||] and mts_at = ref [||] in
  let ensure_mts h =
    let n = Array.length !mts_buckets in
    if h >= n then begin
      let nn = max 16 (max (2 * n) (h + 1)) in
      let nb = Array.make nn [||] in
      Array.blit !mts_buckets 0 nb 0 n;
      mts_buckets := nb;
      let na = Array.make nn 0. in
      Array.blit !mts_at 0 na 0 n;
      mts_at := na
    end
  in
  (* Downgraded calls waiting for spare capacity, oldest first.  Handles
     recycle, so entries carry the call id; stale or already-restored
     entries are dropped at drain time. *)
  let upq : (Store.handle * int) Queue.t = Queue.create () in
  let rec drain_upgrades now =
    match cfg.service with
    | Service_model.Downgrade { tiers } -> (
        match Queue.peek_opt upq with
        | None -> ()
        | Some (h, id0) ->
            if
              (not (Store.is_live store h))
              || Store.id store h <> id0
              || Store.demanded store h <= Store.applied store h
            then begin
              ignore (Queue.pop upq);
              drain_upgrades now
            end
            else begin
              match Store.try_upgrade ~links store h ~tiers ~now with
              | None -> () (* head-of-line blocking keeps the order fair *)
              | Some r ->
                  incr upgrades;
                  Store.settle ~links store h ~rate:r;
                  Controller.on_renegotiate ctrl ~now ~call:id0 ~rate:r;
                  if Store.demanded store h <= r then begin
                    ignore (Queue.pop upq);
                    drain_upgrades now
                  end
                  (* else: partially restored — stays at the head, and
                     the next spare-capacity event climbs further *)
            end)
    | _ -> ()
  in
  let try_arrival now =
    incr arrivals;
    match cfg.service with
    | Service_model.Renegotiate ->
        (* Seed path, verbatim (bit-identity anchor, DESIGN.md §15). *)
        if Controller.admit ctrl ~now then begin
          incr admitted;
          let id = !next_id in
          incr next_id;
          let route = routes.(Rng.int rng n_routes) in
          let h =
            Store.acquire store ~id ~route ~transit:(Array.length route > 1)
          in
          let lvl = Rng.int rng n_levels in
          let rate = cfg.levels.(lvl) in
          Store.set_level store h lvl;
          Store.set_cursor store h 0;
          Store.settle ~links store h ~rate;
          Controller.on_admit ctrl ~now ~call:id ~rate;
          if Store.live_count store > !peak then peak := Store.live_count store;
          ignore
            (Wheel.push wheel
               ~time:(now +. Rng.exponential rng (1. /. cfg.mean_hold))
               h)
        end
        else incr admission_denied
    | _ -> (
        (* The demanded level is drawn before the decision here (the
           models need the rate to decide); the draw order differs from
           the seed path on denied arrivals, which is fine — only the
           Renegotiate path owes bit-identity. *)
        let route = routes.(Rng.int rng n_routes) in
        let lvl = Rng.int rng n_levels in
        let demanded = cfg.levels.(lvl) in
        let id = !next_id in
        let h =
          Store.acquire store ~id ~route ~transit:(Array.length route > 1)
        in
        let fits r = Store.fits ~links store h ~rate:r ~now in
        match Controller.decide ctrl ~now ~demanded ~fits with
        | Controller.Blocked ->
            Store.release store h;
            incr admission_denied
        | Controller.Admit { granted; downgraded; _ } ->
            incr admitted;
            incr next_id;
            Store.set_level store h lvl;
            Store.set_cursor store h 0;
            Store.set_demanded store h demanded;
            Store.settle ~links store h ~rate:granted;
            Controller.on_admit ctrl ~now ~call:id ~rate:granted;
            (match cfg.service with
            | Service_model.Mts_profile p ->
                ensure_mts h;
                !mts_buckets.(h) <- Mts.attach p;
                !mts_at.(h) <- now
            | _ -> ());
            if downgraded then begin
              incr downgrades;
              Queue.push (h, id) upq
            end;
            if Store.live_count store > !peak then
              peak := Store.live_count store;
            ignore
              (Wheel.push wheel
                 ~time:(now +. Rng.exponential rng (1. /. cfg.mean_hold))
                 h))
  in
  let fire h now =
    incr events_fired;
    let cursor = Store.cursor store h + 1 in
    Store.set_cursor store h cursor;
    if cursor > cfg.pieces_per_call then begin
      (* Departure: free the capacity and queue a replacement arrival
         for the next tick batch. *)
      Controller.on_depart ctrl ~now ~call:(Store.id store h);
      Store.settle ~links store h ~rate:0.;
      Store.release store h;
      incr departures;
      incr replacements;
      (* Spare capacity just appeared: restore downgraded calls. *)
      drain_upgrades now
    end
    else begin
      match cfg.service with
      | Service_model.Renegotiate ->
          (* Seed path, verbatim. *)
          let lvl = Rng.int rng n_levels in
          let rate = cfg.levels.(lvl) in
          let applied = Store.applied store h in
          if rate > applied then begin
            incr reneg_attempts;
            if not (Store.fits ~links store h ~rate ~now) then
              incr reneg_denied
          end;
          (* Settle semantics, as everywhere in this repo: the demand
             moves whether or not it fits; overload shows up in the
             accounting. *)
          Store.set_level store h lvl;
          Store.settle ~links store h ~rate;
          Controller.on_renegotiate ctrl ~now ~call:(Store.id store h) ~rate;
          ignore
            (Wheel.push wheel
               ~time:(now +. Rng.exponential rng (1. /. cfg.mean_hold))
               h)
      | _ ->
          let lvl = Rng.int rng n_levels in
          let demanded = cfg.levels.(lvl) in
          let applied = Store.applied store h in
          if demanded > applied then incr reneg_attempts;
          let granted =
            match cfg.service with
            | Service_model.Downgrade { tiers } ->
                let d =
                  Store.decide_downgrade ~links store h ~tiers ~demanded ~now
                in
                if Service_model.downgraded d then begin
                  incr downgrades;
                  (match d with
                  | Service_model.Settle_floor _ -> incr reneg_denied
                  | _ -> ());
                  Queue.push (h, Store.id store h) upq
                end;
                Service_model.granted_rate d ~demanded
            | Service_model.Mts_profile p ->
                ensure_mts h;
                if Array.length !mts_buckets.(h) = 0 then begin
                  !mts_buckets.(h) <- Mts.attach p;
                  !mts_at.(h) <- now
                end;
                let elapsed = Float.max 0. (now -. !mts_at.(h)) in
                !mts_at.(h) <- now;
                Store.set_demanded store h demanded;
                let granted =
                  Mts.police p !mts_buckets.(h) ~elapsed ~applied ~demanded
                in
                if granted < demanded then begin
                  incr downgrades;
                  if demanded > applied then incr reneg_denied
                end;
                granted
            | Service_model.Renegotiate -> assert false
          in
          Store.set_level store h lvl;
          Store.settle ~links store h ~rate:granted;
          Controller.on_renegotiate ctrl ~now ~call:(Store.id store h)
            ~rate:granted;
          ignore
            (Wheel.push wheel
               ~time:(now +. Rng.exponential rng (1. /. cfg.mean_hold))
               h)
    end
  in
  let fire_until bound =
    let continue_ = ref true in
    while !continue_ do
      match Wheel.peek wheel with
      | Some (at, _) when at <= bound -> (
          match Wheel.pop wheel with
          | Some (at, h) -> fire h at
          | None -> continue_ := false)
      | _ -> continue_ := false
    done
  in
  let quota = (cfg.calls_per_shard + cfg.ramp_ticks - 1) / cfg.ramp_ticks in
  let n_ticks =
    cfg.ramp_ticks + int_of_float (Float.ceil (cfg.horizon /. cfg.tick))
  in
  for k = 1 to n_ticks do
    let now = float_of_int k *. cfg.tick in
    fire_until now;
    let ramp =
      if k <= cfg.ramp_ticks then
        min quota (cfg.calls_per_shard - (quota * (k - 1)))
      else 0
    in
    let batch = max 0 ramp + !replacements in
    replacements := 0;
    for _ = 1 to batch do
      try_arrival now
    done
  done;
  let audit_violations = Store.audit ~links store in
  let stats = Controller.stats ctrl in
  let demand_hash =
    Array.fold_left (fun h l -> fnv_float h l.Link.demand) 0 links
  in
  let shard_hash =
    (* The seed fold list is extended with the downgrade/upgrade
       counters only under the new models, so the Renegotiate hash
       stays bit-identical to the pre-refactor one. *)
    let folded =
      [
        stats.Controller.decision_hash;
        !arrivals;
        !admitted;
        !reneg_denied;
        !departures;
        !events_fired;
        Store.live_count store;
      ]
      @
      match cfg.service with
      | Service_model.Renegotiate -> []
      | _ -> [ !downgrades; !upgrades ]
    in
    List.fold_left fnv demand_hash folded
  in
  {
    arrivals = !arrivals;
    admitted = !admitted;
    admission_denied = !admission_denied;
    reneg_attempts = !reneg_attempts;
    reneg_denied = !reneg_denied;
    departures = !departures;
    events_fired = !events_fired;
    downgrades = !downgrades;
    upgrades = !upgrades;
    peak_concurrent = !peak;
    final_concurrent = Store.live_count store;
    decision_hash = stats.Controller.decision_hash;
    batch_hits = stats.Controller.batch_hits;
    memo_hits = stats.Controller.solver.Rcbr_effbw.Chernoff.Solver.memo_hits;
    audit_violations;
    shard_hash;
  }

let run ?pool cfg =
  assert (cfg.shards > 0 && cfg.calls_per_shard > 0);
  assert (cfg.pieces_per_call >= 1 && cfg.ramp_ticks >= 1);
  assert (Array.length cfg.levels > 0);
  Service_model.validate cfg.service;
  (* Pre-split one RNG per shard *before* submission, so the streams —
     and with them every shard result — do not depend on scheduling. *)
  let root = Rng.create cfg.seed in
  let rngs = Array.init cfg.shards (fun _ -> Rng.split root) in
  let shards_ = Pool.map_array ?pool (run_shard cfg) rngs in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 shards_ in
  {
    shards_;
    total_arrivals = sum (fun s -> s.arrivals);
    total_admitted = sum (fun s -> s.admitted);
    total_denied = sum (fun s -> s.admission_denied);
    total_reneg_attempts = sum (fun s -> s.reneg_attempts);
    total_reneg_denied = sum (fun s -> s.reneg_denied);
    total_departures = sum (fun s -> s.departures);
    total_events = sum (fun s -> s.events_fired);
    total_downgrades = sum (fun s -> s.downgrades);
    total_upgrades = sum (fun s -> s.upgrades);
    concurrent_calls = sum (fun s -> s.final_concurrent);
    peak_concurrent = sum (fun s -> s.peak_concurrent);
    total_batch_hits = sum (fun s -> s.batch_hits);
    total_memo_hits = sum (fun s -> s.memo_hits);
    audit_violations = sum (fun s -> s.audit_violations);
    outcome_hash =
      Array.fold_left (fun h s -> fnv h s.shard_hash) 0 shards_;
  }
