(** Renegotiation failure across multiple hops (Section III-C).

    "As the mean number of hops in the network increases, the
    probability of renegotiation failure is likely to increase since
    each hop is a possible point of failure."  Transit calls traverse
    [hops] links, each also carrying its own single-hop cross traffic;
    a transit rate increase succeeds only if {e every} hop can fit it.
    The experiment measures the denial fraction of transit
    renegotiations as the path grows.

    Since the [lib/net] refactor this module is a thin driver over
    {!Rcbr_net}: the topology-general engine is {!run_net} (any
    {!Rcbr_net.Topology.t} — meshes, routes of different lengths,
    shared links), and the historical entry points map onto it through
    {!Rcbr_net.Topology.parallel_routes} bit-identically. *)

type config = {
  schedule : Rcbr_core.Schedule.t;  (** played by transit and local calls *)
  hops : int;
  capacity_per_hop : float;  (** b/s *)
  transit_calls : int;  (** concurrent calls crossing all hops *)
  local_calls_per_hop : int;  (** concurrent single-hop calls on each hop *)
  horizon : float;  (** simulated seconds *)
  seed : int;
}

type balanced_config = {
  base : config;
  routes : int;  (** parallel alternative paths, each [hops] long *)
  balance : bool;
      (** pick the least-loaded route at call setup (the paper's
          "load balancing at the call level") vs uniformly at random *)
}

type net_config = {
  schedule : Rcbr_core.Schedule.t;
  topology : Rcbr_net.Topology.t;
  transit_calls : int;
      (** spread across the topology's routes (least-loaded or random) *)
  local_calls_per_link : int;  (** single-hop cross traffic on every link *)
  horizon : float;
  seed : int;
  balance : bool;
  service : Rcbr_policy.Service_model.t;
      (** what a non-fitting rate change gets (DESIGN.md §15);
          [Renegotiate] is the seed's settle semantics, bit-identical to
          the pre-refactor code.  The historical entry points
          ({!run}/{!run_balanced}/{!run_faulty}) always run
          [Renegotiate]. *)
}

type metrics = {
  transit_attempts : int;  (** rate-increase requests by transit calls *)
  transit_denials : int;
  local_attempts : int;
  local_denials : int;
  downgrades : int;
      (** increases granted below the demanded rate; 0 under
          [Renegotiate] *)
  mean_hop_utilization : float;  (** demand / capacity, time-averaged, capped at 1 *)
}

type fault_metrics = {
  rm_lost : int;  (** signalling cells the fault plane swallowed *)
  retransmits : int;
  abandoned : int;  (** rate changes applied only after give-up *)
  superseded : int;  (** retransmissions cancelled by a newer change *)
  crash_denials : int;  (** denials caused purely by a crashed hop *)
  invariant_failures : int;  (** 0 unless there is a bookkeeping bug *)
}

val denial_fraction : metrics -> float
(** [transit_denials / transit_attempts]; 0 when no attempts. *)

val run : config -> metrics
(** Calls hold for the whole horizon, each playing an independently
    phased copy of the schedule (renegotiation-event driven).  Requires
    positive hops, capacity and horizon, and nonnegative call counts
    with at least one transit call. *)

val run_many : ?pool:Rcbr_util.Pool.t -> config list -> metrics list
(** One {!run} per config, in order, fanned out over the pool (the
    Section III-C hop sweep).  Results are identical for any pool
    size. *)

val run_balanced : balanced_config -> metrics
(** The same with [routes] parallel paths; [base.transit_calls] transit
    calls are spread across them (least-loaded or random) and each path
    carries its own [base.local_calls_per_hop] cross traffic per hop.
    [run c] = [run_balanced { base = c; routes = 1; balance = false }].
    Tests the paper's conjecture that alternate routes plus call-level
    load balancing compensate for the per-hop failure growth. *)

val run_faulty :
  balanced_config -> Rcbr_net.Session.faults -> metrics * fault_metrics
(** {!run_balanced} over an unreliable signalling plane: each rate-change
    cell is lost with probability [rm_drop] per hop and retransmitted
    after [retx_timeout] (a newer change for the same call supersedes the
    pending retransmission); crashed hops deny every increase crossing
    them while down.  Fault randomness comes from a separate
    [fault_seed]ed stream, so [run_faulty bc Session.no_faults =
    (run_balanced bc, zeros)] bit for bit. *)

val run_net : net_config -> Rcbr_net.Session.faults -> metrics * fault_metrics
(** The topology-general experiment the historical entry points are
    built on: transit calls pick among [topology]'s routes (which may
    have different lengths and share links) and every link carries its
    own local cross traffic.  [faults.crashes] name link ids.  On a
    {!Rcbr_net.Topology.parallel_routes} topology this is exactly
    {!run_faulty}. *)
