(** Statistical multiplexing gain comparison (Fig. 3 scenarios, Fig. 6).

    Three ways to carry [n] independent, randomly phased copies of the
    same video stream with a shared budget of [n * buffer] bits of
    buffering and [n * c] b/s of capacity:

    - {b CBR} (Fig. 3a): each stream has its own buffer and a fixed rate
      [c]; no multiplexing at all, so the required [c] is independent of
      [n].
    - {b Shared} (Fig. 3b): all streams feed one buffer of [n * buffer]
      drained at [n * c]; the maximum achievable gain.
    - {b RCBR} (Fig. 3c): each stream is smoothed into a piecewise-CBR
      schedule by its own buffer and the [n] schedules share a
      {e bufferless} link of rate [n * c]; bits are lost whenever total
      demand exceeds the link (the source settles for the remaining
      bandwidth).

    For each scenario, [min_capacity_*] binary-searches the smallest
    per-stream [c] meeting a bit-loss-fraction target, averaging over
    [replications] random phasings.

    Every function taking [?pool] distributes its independent
    replications (and, for the batched [min_capacities_*], its
    per-stream-count searches) over the given {!Rcbr_util.Pool}.  The
    per-replication generators are pre-split sequentially from the
    config seed, so results are bit-identical for any pool size,
    including no pool at all. *)

type config = {
  trace : Rcbr_traffic.Trace.t;
  schedule : Rcbr_core.Schedule.t;  (** RCBR schedule of the same trace *)
  buffer : float;  (** per-stream smoothing buffer, bits *)
  target_loss : float;
  replications : int;
  seed : int;
}

val validate : config -> unit

val min_capacity_cbr : config -> float
(** Per-stream rate of the static CBR scenario (independent of [n]). *)

val min_capacity_shared : ?pool:Rcbr_util.Pool.t -> config -> n:int -> float
val min_capacity_rcbr : ?pool:Rcbr_util.Pool.t -> config -> n:int -> float

val min_capacities_shared :
  ?pool:Rcbr_util.Pool.t -> config -> ns:int list -> float list
(** Per-stream-count batch of {!min_capacity_shared}, one result per
    element of [ns] in order; the searches run concurrently on the
    pool. *)

val min_capacities_rcbr :
  ?pool:Rcbr_util.Pool.t -> config -> ns:int list -> float list

val rcbr_loss :
  ?pool:Rcbr_util.Pool.t -> config -> n:int -> capacity_per_stream:float -> float
(** Average bit-loss fraction of the RCBR scenario at a given capacity
    (exposed for tests and admission experiments). *)

val shared_loss :
  ?pool:Rcbr_util.Pool.t -> config -> n:int -> capacity_per_stream:float -> float

val asymptotic_rcbr_capacity : config -> float
(** The [n -> infinity] limit of the RCBR per-stream capacity: the mean
    rate of the schedule (the inverse bandwidth-efficiency times the
    stream mean, as the paper notes). *)
