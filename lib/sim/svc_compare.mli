(** Service-model shoot-out: the three {!Rcbr_policy.Service_model}s
    run over one pre-generated workload on one shared mesh, so the only
    difference between the columns is what each model grants
    (DESIGN.md §15).

    A seeded workload — arrival times, route picks and per-call
    (duration, rate) pieces — is drawn once and replayed verbatim under
    [Renegotiate], [Downgrade] (ladder between the lowest and highest
    workload level) and [Mts_profile] (token-bucket ladder between the
    workload's mean and peak rates).  Each run reports the paper's
    statistical-multiplexing gain alongside the service-quality prices
    the models pay for it: blocking probability, downgrade probability,
    and Jain's fairness index over per-flow granted/demanded bit
    ratios.  Everything is deterministic per [config.seed]; the
    [bench] harness hashes {!model_metrics.decision_hash} and
    {!model_metrics.outcome_hash} into its drift gate. *)

type config = {
  rows : int;
  cols : int;  (** shared {!Rcbr_net.Topology.grid} mesh *)
  capacity : float;  (** per-link capacity, b/s *)
  calls : int;  (** workload size (arrivals generated) *)
  levels : float array;  (** demanded-rate levels calls draw from, b/s *)
  mean_hold : float;  (** mean piece duration, s *)
  pieces_per_call : int;  (** rate changes before departure *)
  arrival_window : float;  (** arrivals land uniformly in [0, window] s *)
  admit_margin : float;
      (** controller capacity as a multiple of [calls x mean level] *)
  target : float;  (** admission overflow target *)
  tiers : int;  (** downgrade ladder size *)
  mts_scales : int;  (** MTS token-bucket ladder depth *)
  mts_quantum : float;  (** MTS base accounting window, s *)
  seed : int;
}

val default : unit -> config
(** A 4x4 mesh under enough load that the models actually diverge:
    nonzero blocking under [Renegotiate], downgrades and upgrades under
    [Downgrade], policing under [Mts_profile]. *)

type model_metrics = {
  model : string;  (** {!Rcbr_policy.Service_model.name} *)
  arrivals : int;
  admitted : int;
  blocked : int;
  reneg_attempts : int;  (** rate-increase requests by admitted calls *)
  reneg_denied : int;  (** increases settled at the ladder floor *)
  downgrades : int;  (** grants below the demanded rate *)
  upgrades : int;  (** downgraded calls restored on departures *)
  departures : int;
  blocking_probability : float;  (** blocked / arrivals *)
  downgrade_probability : float;
      (** downgrades / (admissions + change attempts) *)
  mean_utilization : float;
      (** link demand / capacity, time- and link-averaged, capped at 1 *)
  smg : float;  (** statistical multiplexing gain:
                    [mean_utilization x peak / mean] of the level set *)
  jain_fairness : float;
      (** Jain's index over per-flow granted/demanded bit ratios;
          blocked calls count as 0 *)
  decision_hash : int;  (** the controller's admit/deny sequence hash *)
  outcome_hash : int;  (** FNV over the counters and final link demands *)
  audit_violations : int;  (** conservation check over every session *)
}

type metrics = { models : model_metrics array }
(** In model order: renegotiate, downgrade, mts. *)

val run : ?pool:Rcbr_util.Pool.t -> config -> metrics
(** Generate the workload once, then run the three models over it (in
    parallel when [pool] has jobs).  Deterministic per [config];
    independent of pool size. *)
