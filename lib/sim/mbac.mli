(** Dynamic call-level simulation of measurement-based admission control
    (Section VI, Figs. 7-10).

    Calls arrive as a Poisson process; each admitted call plays a
    randomly phased copy of a reference RCBR schedule for one schedule
    duration and departs.  The link tracks the total demanded bandwidth
    [D(t)]; whenever [D > capacity] the excess is lost ("the source
    settles for whatever bandwidth remains"), and a renegotiation
    {e increase} that would push [D] above the capacity counts as
    denied.  Because calls are piecewise-CBR, only renegotiation events
    are simulated — the efficiency gain the paper points out in
    footnote 4.

    Since the [lib/net] refactor this module is a thin driver: the link
    state is an {!Rcbr_net.Link} on a {!Rcbr_net.Topology.single_link}
    and each call is an {!Rcbr_net.Session} played on the shared event
    engine; only the MBAC-specific accounting (controller callbacks,
    denial counting, window sampling) lives here.

    Sampling follows the paper: every interval of one schedule duration
    yields one sample of the renegotiation-failure probability (the
    fraction of demanded bits lost) and of the link utilization
    (granted bits / capacity); sampling stops when the 95% confidence
    interval of both is within [relative_precision] of the estimate, or
    when the failure estimate is confidently below [target], or at
    [max_windows]. *)

type config = {
  schedule : Rcbr_core.Schedule.t;  (** reference call schedule *)
  capacity : float;  (** link capacity, b/s *)
  arrival_rate : float;  (** Poisson call arrivals per second *)
  target : float;  (** QoS target given to the controller *)
  seed : int;
  warmup_windows : int;
  min_windows : int;
  max_windows : int;
  relative_precision : float;
  faults : Rcbr_net.Session.faults option;
      (** [None] (the default): reliable signalling, historical
          behaviour.  [Some]: each renegotiation cell is dropped with
          [rm_drop] and retransmitted after [retx_timeout]; a newer rate
          change for the same call, or its departure, cancels the
          pending retransmission, and a departing call releases the rate
          the link actually believes — bandwidth stays conserved under
          any loss pattern.  Call setup cells are not subjected to loss
          (admission already happened). *)
  service : Rcbr_policy.Service_model.t;
      (** what happens when a demanded rate does not fit (DESIGN.md
          §15).  [Renegotiate] (the default) is the seed's settle
          semantics, bit-identical to the pre-refactor code; [Downgrade]
          grants the highest fitting ladder tier and upgrades
          opportunistically on departures; [Mts_profile] polices each
          change against a per-call token-bucket ladder. *)
}

val default_config :
  schedule:Rcbr_core.Schedule.t ->
  capacity:float ->
  arrival_rate:float ->
  target:float ->
  seed:int ->
  config
(** warmup 1, min 10, max 200 windows, precision 0.2, reliable
    signalling, [Renegotiate] service. *)

val offered_load : config -> float
(** Normalized offered load: [arrival_rate * duration * mean_rate
    / capacity] — Erlangs times mean rate over capacity. *)

type metrics = {
  failure_probability : float;  (** mean per-window bit-loss fraction *)
  failure_halfwidth : float;  (** 95% CI half-width *)
  utilization : float;  (** mean per-window granted / capacity *)
  utilization_halfwidth : float;
  call_blocking : float;  (** fraction of arrivals rejected *)
  denial_fraction : float;  (** renegotiation increases denied / issued *)
  mean_calls_in_system : float;
  windows : int;
  signalling_dropped : int;  (** RM cells lost to the fault plane; 0 without faults *)
  signalling_retransmits : int;
  signalling_abandoned : int;  (** changes applied only after give-up *)
  invariant_failures : int;
      (** conservation-audit violations; 0 unless [check_invariants]
          found a bookkeeping bug *)
  downgrades : int;
      (** changes (and admissions) granted below the demanded rate; 0
          under [Renegotiate] *)
  upgrades : int;
      (** downgraded calls restored toward their demanded rate on
          spare-capacity events ([Downgrade] model only) *)
  admission : Rcbr_admission.Controller.stats;
      (** the controller's decision and solver counters at the end of
          the run — in particular [decision_hash], an order-sensitive
          hash of the admit/deny sequence used to check that runs are
          bit-identical across [-j] and across the fast/legacy admission
          paths *)
}

val run : config -> controller:Rcbr_admission.Controller.t -> metrics

val run_many :
  ?pool:Rcbr_util.Pool.t ->
  (config * (unit -> Rcbr_admission.Controller.t)) array ->
  metrics array
(** One {!run} per entry, in input order, fanned out over the pool (the
    load x capacity grids of Figs. 7-10).  Each entry's controller is
    built inside its task by the factory — controllers are stateful and
    must not be shared.  Every run is a function of its config seed
    alone, so results are identical for any pool size. *)

val run_with_pieces :
  config ->
  make_pieces:(Rcbr_util.Rng.t -> (float * float) array) ->
  controller:Rcbr_admission.Controller.t ->
  metrics
(** Like {!run} but each admitted call's [(duration_s, rate)] pieces come
    from the given generator — e.g. randomly phased schedules perturbed
    by user interactivity ({!Interactive.pieces}).  The sampling window
    stays one schedule duration. *)

val shifted_pieces :
  Rcbr_core.Schedule.t -> shift:int -> (float * float) array
(** [(duration_s, rate)] pieces of a schedule played from a circular
    phase of [shift] slots, in order — the event list of one call.
    Exposed for tests and diagnostics. *)
