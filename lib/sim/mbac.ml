module Schedule = Rcbr_core.Schedule
module Events = Rcbr_queue.Events
module Rng = Rcbr_util.Rng
module Stats = Rcbr_util.Stats
module Controller = Rcbr_admission.Controller

type faults = {
  rm_drop : float;
  rm_timeout : float;
  rm_max_retransmits : int;
  fault_seed : int;
}

type config = {
  schedule : Rcbr_core.Schedule.t;
  capacity : float;
  arrival_rate : float;
  target : float;
  seed : int;
  warmup_windows : int;
  min_windows : int;
  max_windows : int;
  relative_precision : float;
  faults : faults option;
}

let default_config ~schedule ~capacity ~arrival_rate ~target ~seed =
  {
    schedule;
    capacity;
    arrival_rate;
    target;
    seed;
    warmup_windows = 1;
    min_windows = 10;
    max_windows = 200;
    relative_precision = 0.2;
    faults = None;
  }

let offered_load c =
  c.arrival_rate *. Schedule.duration c.schedule
  *. Schedule.mean_rate c.schedule /. c.capacity

type metrics = {
  failure_probability : float;
  failure_halfwidth : float;
  utilization : float;
  utilization_halfwidth : float;
  call_blocking : float;
  denial_fraction : float;
  mean_calls_in_system : float;
  windows : int;
  signalling_dropped : int;
  signalling_retransmits : int;
  signalling_abandoned : int;
  admission : Controller.stats;
}

(* The (duration_s, rate) pieces of a schedule started at a circular
   phase of [shift] slots, in play order.  O(#segments). *)
let shifted_pieces schedule ~shift =
  let segs = Schedule.segments schedule in
  let m = Array.length segs in
  let n = Schedule.n_slots schedule in
  let fps = Schedule.fps schedule in
  let shift = ((shift mod n) + n) mod n in
  let seg_end i = if i + 1 < m then segs.(i + 1).Schedule.start_slot else n in
  (* Segment containing the shift slot. *)
  let j = ref 0 in
  while !j + 1 < m && segs.(!j + 1).Schedule.start_slot <= shift do
    incr j
  done;
  let pieces = ref [] in
  let push slots rate =
    if slots > 0 then pieces := (float_of_int slots /. fps, rate) :: !pieces
  in
  push (seg_end !j - shift) segs.(!j).Schedule.rate;
  for i = !j + 1 to m - 1 do
    push (seg_end i - segs.(i).Schedule.start_slot) segs.(i).Schedule.rate
  done;
  for i = 0 to !j - 1 do
    push (seg_end i - segs.(i).Schedule.start_slot) segs.(i).Schedule.rate
  done;
  push (shift - segs.(!j).Schedule.start_slot) segs.(!j).Schedule.rate;
  Array.of_list (List.rev !pieces)

type link = {
  capacity : float;
  mutable demand : float;  (* sum of admitted calls' demanded rates *)
  mutable last : float;  (* time of last accounting *)
  mutable offered_bits : float;
  mutable lost_bits : float;
  mutable granted_bits : float;
  mutable call_seconds : float;  (* integral of #calls, for the mean *)
  mutable n_calls : int;
}

let advance link ~now =
  let dt = now -. link.last in
  if dt > 0. then begin
    link.offered_bits <- link.offered_bits +. (link.demand *. dt);
    link.granted_bits <-
      link.granted_bits +. (Float.min link.demand link.capacity *. dt);
    link.lost_bits <-
      link.lost_bits +. (Float.max 0. (link.demand -. link.capacity) *. dt);
    link.call_seconds <- link.call_seconds +. (float_of_int link.n_calls *. dt);
    link.last <- now
  end

let run_with_pieces (c : config) ~make_pieces ~controller =
  assert (c.capacity > 0. && c.arrival_rate > 0.);
  assert (c.warmup_windows >= 0 && c.min_windows >= 1);
  assert (c.max_windows >= c.warmup_windows + c.min_windows);
  (match c.faults with
  | None -> ()
  | Some f ->
      assert (f.rm_drop >= 0. && f.rm_drop <= 1.);
      assert (f.rm_timeout > 0. && f.rm_max_retransmits >= 0));
  let rng = Rng.create c.seed in
  (* Fault randomness lives on its own stream: [faults = None] and
     [Some { rm_drop = 0.; _ }] give bit-identical metrics. *)
  let frng =
    match c.faults with
    | None -> None
    | Some f -> Some (f, Rng.create f.fault_seed)
  in
  let sig_dropped = ref 0 and sig_retx = ref 0 and sig_abandoned = ref 0 in
  let engine = Events.create () in
  let window = Schedule.duration c.schedule in
  let link =
    {
      capacity = c.capacity;
      demand = 0.;
      last = 0.;
      offered_bits = 0.;
      lost_bits = 0.;
      granted_bits = 0.;
      call_seconds = 0.;
      n_calls = 0;
    }
  in
  let next_call_id = ref 0 in
  let arrivals = ref 0 and blocked = ref 0 in
  let reneg_up = ref 0 and reneg_denied = ref 0 in
  let failure_stats = Stats.Online.create () in
  let util_stats = Stats.Online.create () in
  let calls_stats = Stats.Online.create () in
  let windows_done = ref 0 in
  let stop = ref false in
  (* One call's life: walk its pieces, then depart.  [applied] is the
     rate the link currently accounts for this call; with a reliable
     signalling plane it always equals the previous piece's rate, but a
     dropped rate-change cell leaves it behind until the retransmission
     (or the give-up) lands.  [gen] is bumped per rate change and on
     departure, so a newer change or the teardown cancels any pending
     retransmission of a stale one. *)
  let rec piece_event id applied gen pieces idx engine =
    let now = Events.now engine in
    advance link ~now;
    if idx >= Array.length pieces then begin
      (* Departure: release whatever rate the link believes.  A change
         still in retransmission simply never applies. *)
      link.demand <- link.demand -. !applied;
      link.n_calls <- link.n_calls - 1;
      incr gen;
      Controller.on_depart controller ~now ~call:id
    end
    else begin
      let duration, rate = pieces.(idx) in
      incr gen;
      let g = !gen in
      let apply ~now =
        let new_demand = link.demand -. !applied +. rate in
        if idx > 0 && rate > !applied then begin
          incr reneg_up;
          if new_demand > link.capacity then incr reneg_denied
        end;
        link.demand <- new_demand;
        applied := rate;
        if idx > 0 then Controller.on_renegotiate controller ~now ~call:id ~rate
      in
      let dropped (f, r) = f.rm_drop > 0. && Rng.float r < f.rm_drop in
      let rec attempt retx engine =
        let now = Events.now engine in
        advance link ~now;
        match frng with
        (* Call setup (idx = 0) is signalled reliably: admission already
           happened at the arrival event. *)
        | Some ((f, _) as fr) when idx > 0 && dropped fr ->
            incr sig_dropped;
            if retx >= f.rm_max_retransmits then begin
              (* Settle semantics: give up signalling and account the
                 demanded rate anyway — the excess shows up as lost
                 bits, exactly as for a denied increase. *)
              incr sig_abandoned;
              apply ~now
            end
            else
              Events.schedule_after engine ~delay:f.rm_timeout (fun engine ->
                  if !gen = g then begin
                    incr sig_retx;
                    attempt (retx + 1) engine
                  end)
        | _ -> apply ~now
      in
      attempt 0 engine;
      Events.schedule_after engine ~delay:duration
        (piece_event id applied gen pieces (idx + 1))
    end
  in
  let rec arrival_event engine =
    let now = Events.now engine in
    advance link ~now;
    incr arrivals;
    if Controller.admit controller ~now then begin
      let id = !next_call_id in
      incr next_call_id;
      let pieces = make_pieces rng in
      link.n_calls <- link.n_calls + 1;
      Controller.on_admit controller ~now ~call:id ~rate:(snd pieces.(0));
      piece_event id (ref 0.) (ref 0) pieces 0 engine
    end
    else incr blocked;
    if not !stop then
      Events.schedule_after engine
        ~delay:(Rng.exponential rng c.arrival_rate)
        arrival_event
  in
  let rec window_event engine =
    let now = Events.now engine in
    advance link ~now;
    incr windows_done;
    if !windows_done > c.warmup_windows then begin
      let failure =
        if link.offered_bits > 0. then link.lost_bits /. link.offered_bits
        else 0.
      in
      Stats.Online.add failure_stats failure;
      Stats.Online.add util_stats (link.granted_bits /. (c.capacity *. window));
      Stats.Online.add calls_stats (link.call_seconds /. window)
    end;
    link.offered_bits <- 0.;
    link.lost_bits <- 0.;
    link.granted_bits <- 0.;
    link.call_seconds <- 0.;
    let samples = Stats.Online.count failure_stats in
    let enough_precision =
      samples >= c.min_windows
      && Stats.Online.relative_precision failure_stats
         <= c.relative_precision
      && Stats.Online.relative_precision util_stats <= c.relative_precision
    in
    let confidently_below_target =
      samples >= c.min_windows
      && Stats.Online.mean failure_stats
         +. Stats.Online.confidence_halfwidth failure_stats
         < c.target
    in
    if
      enough_precision || confidently_below_target
      || !windows_done >= c.max_windows
    then stop := true
    else Events.schedule_after engine ~delay:window window_event
  in
  Events.schedule engine ~at:(Rng.exponential rng c.arrival_rate) arrival_event;
  Events.schedule engine ~at:window window_event;
  while (not !stop) && Events.step engine do
    ()
  done;
  {
    failure_probability = Stats.Online.mean failure_stats;
    failure_halfwidth = Stats.Online.confidence_halfwidth failure_stats;
    utilization = Stats.Online.mean util_stats;
    utilization_halfwidth = Stats.Online.confidence_halfwidth util_stats;
    call_blocking =
      (if !arrivals = 0 then 0.
       else float_of_int !blocked /. float_of_int !arrivals);
    denial_fraction =
      (if !reneg_up = 0 then 0.
       else float_of_int !reneg_denied /. float_of_int !reneg_up);
    mean_calls_in_system = Stats.Online.mean calls_stats;
    windows = Stats.Online.count failure_stats;
    signalling_dropped = !sig_dropped;
    signalling_retransmits = !sig_retx;
    signalling_abandoned = !sig_abandoned;
    admission = Controller.stats controller;
  }

let run (c : config) ~controller =
  let n_slots = Schedule.n_slots c.schedule in
  let make_pieces rng =
    shifted_pieces c.schedule ~shift:(Rng.int rng n_slots)
  in
  run_with_pieces c ~make_pieces ~controller

(* Each grid point of the Figs. 7-10 load x capacity sweeps is an
   independent simulation driven entirely by its own config seed, so a
   batch fans out over the pool.  Controllers are stateful and must be
   constructed inside the task, hence the factory. *)
let run_many ?pool entries =
  Rcbr_util.Pool.map_array ?pool
    (fun (c, make_controller) -> run c ~controller:(make_controller ()))
    entries
