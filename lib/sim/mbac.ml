module Schedule = Rcbr_core.Schedule
module Events = Rcbr_queue.Events
module Rng = Rcbr_util.Rng
module Stats = Rcbr_util.Stats
module Controller = Rcbr_admission.Controller
module Topology = Rcbr_net.Topology
module Link = Rcbr_net.Link
module Session = Rcbr_net.Session
module Service_model = Rcbr_policy.Service_model

type config = {
  schedule : Rcbr_core.Schedule.t;
  capacity : float;
  arrival_rate : float;
  target : float;
  seed : int;
  warmup_windows : int;
  min_windows : int;
  max_windows : int;
  relative_precision : float;
  faults : Session.faults option;
  service : Service_model.t;
}

let default_config ~schedule ~capacity ~arrival_rate ~target ~seed =
  {
    schedule;
    capacity;
    arrival_rate;
    target;
    seed;
    warmup_windows = 1;
    min_windows = 10;
    max_windows = 200;
    relative_precision = 0.2;
    faults = None;
    service = Service_model.Renegotiate;
  }

let offered_load c =
  c.arrival_rate *. Schedule.duration c.schedule
  *. Schedule.mean_rate c.schedule /. c.capacity

type metrics = {
  failure_probability : float;
  failure_halfwidth : float;
  utilization : float;
  utilization_halfwidth : float;
  call_blocking : float;
  denial_fraction : float;
  mean_calls_in_system : float;
  windows : int;
  signalling_dropped : int;
  signalling_retransmits : int;
  signalling_abandoned : int;
  invariant_failures : int;
  downgrades : int;
  upgrades : int;
  admission : Controller.stats;
}

(* The (duration_s, rate) pieces of a schedule started at a circular
   phase of [shift] slots, in play order.  O(#segments). *)
let shifted_pieces schedule ~shift =
  let segs = Schedule.segments schedule in
  let m = Array.length segs in
  let n = Schedule.n_slots schedule in
  let fps = Schedule.fps schedule in
  let shift = ((shift mod n) + n) mod n in
  let seg_end i = if i + 1 < m then segs.(i + 1).Schedule.start_slot else n in
  (* Segment containing the shift slot. *)
  let j = ref 0 in
  while !j + 1 < m && segs.(!j + 1).Schedule.start_slot <= shift do
    incr j
  done;
  let pieces = ref [] in
  let push slots rate =
    if slots > 0 then pieces := (float_of_int slots /. fps, rate) :: !pieces
  in
  push (seg_end !j - shift) segs.(!j).Schedule.rate;
  for i = !j + 1 to m - 1 do
    push (seg_end i - segs.(i).Schedule.start_slot) segs.(i).Schedule.rate
  done;
  for i = 0 to !j - 1 do
    push (seg_end i - segs.(i).Schedule.start_slot) segs.(i).Schedule.rate
  done;
  push (shift - segs.(!j).Schedule.start_slot) segs.(!j).Schedule.rate;
  Array.of_list (List.rev !pieces)

let run_with_pieces (c : config) ~make_pieces ~controller =
  assert (c.capacity > 0. && c.arrival_rate > 0.);
  assert (c.warmup_windows >= 0 && c.min_windows >= 1);
  assert (c.max_windows >= c.warmup_windows + c.min_windows);
  (match c.faults with None -> () | Some f -> Session.validate f);
  Service_model.validate c.service;
  Controller.set_service controller c.service;
  let rng = Rng.create c.seed in
  (* Fault randomness lives on its own stream inside the plane:
     [faults = None] and [Some { rm_drop = 0.; _ }] give bit-identical
     metrics. *)
  let plane =
    match c.faults with
    | None -> None
    | Some f -> Some (Session.plane ~drop:Session.Per_cell f)
  in
  let audit_enabled =
    match c.faults with Some f -> f.check_invariants | None -> false
  in
  let engine = Events.create () in
  let window = Schedule.duration c.schedule in
  let topology = Topology.single_link ~capacity:c.capacity in
  let crashes =
    match c.faults with None -> [] | Some f -> f.Session.crashes
  in
  let link = (Link.of_topology ~crashes topology).(0) in
  let links = [| link |] in
  let next_call_id = ref 0 in
  let arrivals = ref 0 and blocked = ref 0 in
  let reneg_up = ref 0 and reneg_denied = ref 0 in
  let downgrades = ref 0 and upgrades = ref 0 in
  (* The active list is needed for the conservation audit and for the
     Downgrade model's spare-capacity upgrade scan. *)
  let track_active =
    audit_enabled || c.service <> Service_model.Renegotiate
  in
  let failure_stats = Stats.Online.create () in
  let util_stats = Stats.Online.create () in
  let calls_stats = Stats.Online.create () in
  let windows_done = ref 0 in
  let stop = ref false in
  let active = ref [] and applies = ref 0 in
  let record_audit () =
    match plane with
    | Some p ->
        p.Session.counters.Session.invariant_failures <-
          p.Session.counters.Session.invariant_failures
          + Session.audit ~links:[| link |] ~sessions:!active
    | None -> ()
  in
  (* One call's life: walk its pieces, then depart.  [t.applied] is the
     rate the link currently accounts for this call; with a reliable
     signalling plane it always equals the previous piece's rate, but a
     dropped rate-change cell leaves it behind until the retransmission
     (or the give-up) lands.  [t.gen] is bumped per rate change and on
     departure, so a newer change or the teardown cancels any pending
     retransmission of a stale one. *)
  let deliver t ~now ~idx ~rate =
    match c.service with
    | Service_model.Renegotiate ->
        (* The seed's float expressions, verbatim (bit-identity anchor
           for the service-model refactor, DESIGN.md §15). *)
        let new_demand = link.Link.demand -. t.Session.applied +. rate in
        if idx > 0 && rate > t.Session.applied then begin
          incr reneg_up;
          if new_demand > link.Link.capacity || Link.down link ~now then begin
            incr reneg_denied;
            if Link.down link ~now then
              match plane with
              | Some p ->
                  p.Session.counters.Session.crash_denials <-
                    p.Session.counters.Session.crash_denials + 1
              | None -> ()
          end
        end;
        link.Link.demand <- new_demand;
        t.Session.applied <- rate;
        if idx > 0 then
          Controller.on_renegotiate controller ~now ~call:t.Session.id ~rate;
        if audit_enabled then begin
          incr applies;
          if !applies mod 64 = 0 then record_audit ()
        end
    | _ ->
        let decision = Session.decide c.service ~links t ~now ~demanded:rate in
        let granted = Service_model.granted_rate decision ~demanded:rate in
        if idx > 0 && rate > t.Session.applied then begin
          incr reneg_up;
          if Service_model.downgraded decision then begin
            incr downgrades;
            match decision with
            | Service_model.Settle_floor _ ->
                (* Nothing fit, not even the floor: the call settles
                   there anyway — this is the denied-increase analogue. *)
                incr reneg_denied;
                if Link.down link ~now then (
                  match plane with
                  | Some p ->
                      p.Session.counters.Session.crash_denials <-
                        p.Session.counters.Session.crash_denials + 1
                  | None -> ())
            | _ -> ()
          end
        end;
        Session.settle ~links t ~rate:granted;
        if idx > 0 then
          Controller.on_renegotiate controller ~now ~call:t.Session.id
            ~rate:granted;
        if audit_enabled then begin
          incr applies;
          if !applies mod 64 = 0 then record_audit ()
        end
  in
  (* Spare capacity just appeared: restore downgraded calls toward their
     demanded rate, in ascending call-id order (deterministic regardless
     of the active list's insertion history). *)
  let upgrade_scan ~now =
    match c.service with
    | Service_model.Downgrade _ ->
        List.iter
          (fun s ->
            match Session.try_upgrade c.service ~links s ~now with
            | None -> ()
            | Some r ->
                incr upgrades;
                Session.settle ~links s ~rate:r;
                Controller.on_renegotiate controller ~now ~call:s.Session.id
                  ~rate:r)
          (List.sort
             (fun a b -> compare a.Session.id b.Session.id)
             !active)
    | _ -> ()
  in
  let depart t ~now =
    (* Departure: release whatever rate the link believes.  A change
       still in retransmission simply never applies. *)
    link.Link.demand <- link.Link.demand -. t.Session.applied;
    link.Link.n_calls <- link.Link.n_calls - 1;
    Controller.on_depart controller ~now ~call:t.Session.id;
    if track_active then active := List.filter (fun s -> s != t) !active;
    upgrade_scan ~now
  in
  let driver =
    {
      Session.plane_ = plane;
      (* Call setup (piece 0) is signalled reliably: admission already
         happened at the arrival event. *)
      reliable_setup = true;
      lifetime = Session.Depart_after_pieces depart;
      before = (fun ~now -> Link.advance link ~now);
      on_attempt = (fun ~now -> Link.advance link ~now);
      retry = (fun ~now:_ -> true);
      deliver;
    }
  in
  let rec arrival_event engine =
    let now = Events.now engine in
    Link.advance link ~now;
    incr arrivals;
    (match c.service with
    | Service_model.Renegotiate ->
        if Controller.admit controller ~now then begin
          let id = !next_call_id in
          incr next_call_id;
          let pieces = make_pieces rng in
          link.Link.n_calls <- link.Link.n_calls + 1;
          Controller.on_admit controller ~now ~call:id ~rate:(snd pieces.(0));
          let t = Session.make ~id ~route:[| 0 |] ~transit:false in
          if track_active then active := t :: !active;
          Session.play driver t pieces 0 engine
        end
        else incr blocked
    | _ -> (
        (* Pieces are drawn before the decision here (the setup rate is
           the demanded rate); the models do not share the seed's RNG
           consumption pattern and do not need to. *)
        let pieces = make_pieces rng in
        let rate0 = snd pieces.(0) in
        let probe r =
          (not (Link.down link ~now))
          && link.Link.demand +. r <= link.Link.capacity +. 1e-9
        in
        match Controller.decide controller ~now ~demanded:rate0 ~fits:probe with
        | Controller.Blocked -> incr blocked
        | Controller.Admit { granted; downgraded; _ } ->
            if downgraded then incr downgrades;
            let id = !next_call_id in
            incr next_call_id;
            link.Link.n_calls <- link.Link.n_calls + 1;
            Controller.on_admit controller ~now ~call:id ~rate:granted;
            let t = Session.make ~id ~route:[| 0 |] ~transit:false in
            active := t :: !active;
            Session.play driver t pieces 0 engine));
    if not !stop then
      Events.schedule_after engine
        ~delay:(Rng.exponential rng c.arrival_rate)
        arrival_event
  in
  let rec window_event engine =
    let now = Events.now engine in
    Link.advance link ~now;
    incr windows_done;
    if !windows_done > c.warmup_windows then begin
      let failure =
        if link.Link.offered_bits > 0. then
          link.Link.lost_bits /. link.Link.offered_bits
        else 0.
      in
      Stats.Online.add failure_stats failure;
      Stats.Online.add util_stats
        (link.Link.granted_bits /. (c.capacity *. window));
      Stats.Online.add calls_stats (link.Link.call_seconds /. window)
    end;
    Link.reset_window link;
    let samples = Stats.Online.count failure_stats in
    let enough_precision =
      samples >= c.min_windows
      && Stats.Online.relative_precision failure_stats
         <= c.relative_precision
      && Stats.Online.relative_precision util_stats <= c.relative_precision
    in
    let confidently_below_target =
      samples >= c.min_windows
      && Stats.Online.mean failure_stats
         +. Stats.Online.confidence_halfwidth failure_stats
         < c.target
    in
    if
      enough_precision || confidently_below_target
      || !windows_done >= c.max_windows
    then stop := true
    else Events.schedule_after engine ~delay:window window_event
  in
  Events.schedule engine ~at:(Rng.exponential rng c.arrival_rate) arrival_event;
  Events.schedule engine ~at:window window_event;
  while (not !stop) && Events.step engine do
    ()
  done;
  if audit_enabled then record_audit ();
  let rm_lost, retransmits, abandoned, invariant_failures =
    match plane with
    | Some p ->
        let k = p.Session.counters in
        ( k.Session.rm_lost,
          k.Session.retransmits,
          k.Session.abandoned,
          k.Session.invariant_failures )
    | None -> (0, 0, 0, 0)
  in
  {
    failure_probability = Stats.Online.mean failure_stats;
    failure_halfwidth = Stats.Online.confidence_halfwidth failure_stats;
    utilization = Stats.Online.mean util_stats;
    utilization_halfwidth = Stats.Online.confidence_halfwidth util_stats;
    call_blocking =
      (if !arrivals = 0 then 0.
       else float_of_int !blocked /. float_of_int !arrivals);
    denial_fraction =
      (if !reneg_up = 0 then 0.
       else float_of_int !reneg_denied /. float_of_int !reneg_up);
    mean_calls_in_system = Stats.Online.mean calls_stats;
    windows = Stats.Online.count failure_stats;
    signalling_dropped = rm_lost;
    signalling_retransmits = retransmits;
    signalling_abandoned = abandoned;
    invariant_failures;
    downgrades = !downgrades;
    upgrades = !upgrades;
    admission = Controller.stats controller;
  }

let run (c : config) ~controller =
  let n_slots = Schedule.n_slots c.schedule in
  let make_pieces rng =
    shifted_pieces c.schedule ~shift:(Rng.int rng n_slots)
  in
  run_with_pieces c ~make_pieces ~controller

(* Each grid point of the Figs. 7-10 load x capacity sweeps is an
   independent simulation driven entirely by its own config seed, so a
   batch fans out over the pool.  Controllers are stateful and must be
   constructed inside the task, hence the factory. *)
let run_many ?pool entries =
  Rcbr_util.Pool.map_array ?pool
    (fun (c, make_controller) -> run c ~controller:(make_controller ()))
    entries
