(** Million-call simulation engine: 10^6+ concurrent calls on grid
    meshes.

    Combines the {!Rcbr_net.Store} struct-of-arrays session store, the
    {!Rcbr_queue.Wheel} calendar queue driven with integer handles (no
    per-event closures), batched admission
    ({!Rcbr_admission.Controller.set_batched}) and link-sharded
    parallel runs over the Domain {!Rcbr_util.Pool}.  Each shard owns
    a disjoint {!Rcbr_net.Topology.grid} mesh and a pre-split RNG; the
    merge is an ordered reduction, so every metric — including
    {!metrics.outcome_hash} — is bit-identical for any [-j]
    (the PR 2/3 determinism invariant; checked in CI at [-j1] vs
    [-j4]). *)

type config = {
  shards : int;  (** independent sub-meshes, one Pool task each *)
  rows : int;
  cols : int;  (** per-shard grid (see {!Rcbr_net.Topology.grid}) *)
  calls_per_shard : int;  (** ramp target population per shard *)
  levels : float array;  (** rate levels calls renegotiate among, b/s *)
  link_load_factor : float;
      (** per-link capacity as a multiple of the expected per-link load
          at the ramp target *)
  admit_margin : float;
      (** controller capacity as a multiple of [calls * mean level] *)
  target : float;  (** admission overflow target *)
  mean_hold : float;  (** mean seconds between a call's rate changes *)
  pieces_per_call : int;  (** rate changes before departure *)
  tick : float;  (** arrival-batch period, s *)
  ramp_ticks : int;  (** ticks over which the ramp quota is spread *)
  horizon : float;  (** churn seconds simulated after the ramp *)
  seed : int;
  service : Rcbr_policy.Service_model.t;
      (** what a non-fitting rate gets (DESIGN.md §15).  [Renegotiate]
          (the default) keeps every path — and the outcome hash —
          bit-identical to the pre-refactor engine; [Downgrade] grants
          ladder tiers and restores downgraded calls on departures in
          FIFO order; [Mts_profile] polices each change against a
          per-call token-bucket ladder. *)
}

val default : concurrent:int -> unit -> config
(** Sensible knobs for a target total concurrent population: 8 shards
    of 8x8 meshes, three rate levels, generous admission margin so the
    ramp actually reaches [concurrent] calls. *)

type shard_metrics = {
  arrivals : int;
  admitted : int;
  admission_denied : int;
  reneg_attempts : int;  (** renegotiations asking for a rate increase *)
  reneg_denied : int;  (** of which did not fit link capacity *)
  departures : int;
  events_fired : int;  (** wheel events (renegotiations + departures) *)
  downgrades : int;  (** rates granted below demanded; 0 under [Renegotiate] *)
  upgrades : int;  (** downgraded calls restored on spare capacity *)
  peak_concurrent : int;
  final_concurrent : int;
  decision_hash : int;  (** the controller's admit/deny sequence hash *)
  batch_hits : int;  (** decisions served from the batched-tick cache *)
  memo_hits : int;  (** solver [max_calls] memo hits *)
  audit_violations : int;  (** conservation check over the final store *)
  shard_hash : int;  (** FNV over link demands and the counters above *)
}

type metrics = {
  shards_ : shard_metrics array;  (** per shard, in shard order *)
  total_arrivals : int;
  total_admitted : int;
  total_denied : int;
  total_reneg_attempts : int;
  total_reneg_denied : int;
  total_departures : int;
  total_events : int;
  total_downgrades : int;
  total_upgrades : int;
  concurrent_calls : int;  (** sum of final per-shard populations *)
  peak_concurrent : int;  (** sum of per-shard peaks *)
  total_batch_hits : int;
  total_memo_hits : int;
  audit_violations : int;
  outcome_hash : int;  (** ordered FNV fold of the shard hashes *)
}

val run : ?pool:Rcbr_util.Pool.t -> config -> metrics
(** Run every shard (in parallel when [pool] has jobs) and merge in
    shard order.  Deterministic per [config]; independent of [-j]. *)
