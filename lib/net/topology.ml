module Json = Rcbr_util.Json

type link = { src : int; dst : int; capacity : float }
type t = { n_nodes : int; links : link array; routes : int array array }

let make ~n_nodes ~links ~routes =
  if n_nodes < 1 then invalid_arg "Topology.make: need at least one node";
  Array.iteri
    (fun i l ->
      if l.capacity <= 0. then
        invalid_arg (Printf.sprintf "Topology.make: link %d capacity <= 0" i);
      if l.src < 0 || l.src >= n_nodes || l.dst < 0 || l.dst >= n_nodes then
        invalid_arg (Printf.sprintf "Topology.make: link %d endpoint out of range" i))
    links;
  if Array.length routes = 0 then invalid_arg "Topology.make: no routes";
  Array.iteri
    (fun r route ->
      if Array.length route = 0 then
        invalid_arg (Printf.sprintf "Topology.make: route %d is empty" r);
      Array.iteri
        (fun h id ->
          if id < 0 || id >= Array.length links then
            invalid_arg
              (Printf.sprintf "Topology.make: route %d link id %d out of range" r id);
          if h > 0 && links.(id).src <> links.(route.(h - 1)).dst then
            invalid_arg
              (Printf.sprintf "Topology.make: route %d breaks at hop %d" r h))
        route)
    routes;
  { n_nodes; links; routes }

let single_link ~capacity =
  make ~n_nodes:2
    ~links:[| { src = 0; dst = 1; capacity } |]
    ~routes:[| [| 0 |] |]

let linear ~hops ~capacity =
  if hops < 1 then invalid_arg "Topology.linear: hops < 1";
  make ~n_nodes:(hops + 1)
    ~links:(Array.init hops (fun h -> { src = h; dst = h + 1; capacity }))
    ~routes:[| Array.init hops (fun h -> h) |]

let parallel_routes ~routes ~hops ~capacity =
  if routes < 1 then invalid_arg "Topology.parallel_routes: routes < 1";
  if hops < 1 then invalid_arg "Topology.parallel_routes: hops < 1";
  (* Node 0 is the source, node 1 the sink; route [r]'s interior nodes
     are [2 + r*(hops-1) ..].  Link id [r*hops + h] keeps the historical
     (route, hop) flattening. *)
  let interior r h = 2 + (r * (hops - 1)) + h in
  let links =
    Array.init (routes * hops) (fun i ->
        let r = i / hops and h = i mod hops in
        let src = if h = 0 then 0 else interior r (h - 1) in
        let dst = if h = hops - 1 then 1 else interior r h in
        { src; dst; capacity })
  in
  make
    ~n_nodes:(2 + (routes * (hops - 1)))
    ~links
    ~routes:(Array.init routes (fun r -> Array.init hops (fun h -> (r * hops) + h)))

let grid ~rows ~cols ~capacity =
  if rows < 2 || cols < 2 then invalid_arg "Topology.grid: need rows, cols >= 2";
  let node r c = (r * cols) + c in
  let n_east = rows * (cols - 1) in
  (* East link (r,c) -> (r,c+1) is id [r*(cols-1) + c]; south link
     (r,c) -> (r+1,c) is id [n_east + r*cols + c]. *)
  let east r c = (r * (cols - 1)) + c in
  let south r c = n_east + (r * cols) + c in
  let links =
    Array.init (n_east + ((rows - 1) * cols)) (fun i ->
        if i < n_east then
          let r = i / (cols - 1) and c = i mod (cols - 1) in
          { src = node r c; dst = node r (c + 1); capacity }
        else
          let j = i - n_east in
          let r = j / cols and c = j mod cols in
          { src = node r c; dst = node (r + 1) c; capacity })
  in
  let row_route r = Array.init (cols - 1) (fun c -> east r c) in
  let col_route c = Array.init (rows - 1) (fun r -> south r c) in
  (* Corner-to-corner staircase alternating east/south steps (or
     south/east), so some routes cross both the row and column sets. *)
  let stair first_east =
    let buf = ref [] in
    let r = ref 0 and c = ref 0 in
    let go_east = ref first_east in
    while !r < rows - 1 || !c < cols - 1 do
      let can_e = !c < cols - 1 and can_s = !r < rows - 1 in
      if (!go_east && can_e) || not can_s then begin
        buf := east !r !c :: !buf;
        incr c
      end
      else begin
        buf := south !r !c :: !buf;
        incr r
      end;
      go_east := not !go_east
    done;
    Array.of_list (List.rev !buf)
  in
  let routes =
    Array.concat
      [
        Array.init rows row_route;
        Array.init cols col_route;
        [| stair true; stair false |];
      ]
  in
  make ~n_nodes:(rows * cols) ~links ~routes

let n_links t = Array.length t.links
let n_routes t = Array.length t.routes
let route_lengths t = Array.map Array.length t.routes

(* Shape errors inside the JSON walk carry their own descriptions; the
   local exception turns the walk into a result without threading [let*]
   through every field access. *)
exception Shape of string

let of_json json =
  let fail what = raise (Shape what) in
  let int what = function
    | Json.Int i -> i
    | _ -> fail (what ^ ": expected an integer")
  in
  let number what = function
    | Json.Int i -> float_of_int i
    | Json.Float f -> f
    | _ -> fail (what ^ ": expected a number")
  in
  let list what = function
    | Json.List l -> l
    | _ -> fail (what ^ ": expected a list")
  in
  let field key obj =
    match Json.member key obj with
    | Some v -> v
    | None -> fail (Printf.sprintf "missing %S" key)
  in
  match
    let n_nodes = int "nodes" (field "nodes" json) in
    let links =
      field "links" json
      |> list "links"
      |> List.mapi (fun i l ->
             let what key = Printf.sprintf "links[%d].%s" i key in
             {
               src = int (what "src") (field "src" l);
               dst = int (what "dst") (field "dst" l);
               capacity = number (what "capacity") (field "capacity" l);
             })
      |> Array.of_list
    in
    let routes =
      field "routes" json
      |> list "routes"
      |> List.mapi (fun r route ->
             list (Printf.sprintf "routes[%d]" r) route
             |> List.map (int (Printf.sprintf "routes[%d] entry" r))
             |> Array.of_list)
      |> Array.of_list
    in
    make ~n_nodes ~links ~routes
  with
  | t -> Ok t
  | exception Shape msg -> Error ("bad topology: " ^ msg)
  | exception Invalid_argument msg ->
      (* [make]'s semantic checks: nonpositive capacities, endpoints or
         route hops out of range, broken chains, no routes. *)
      Error ("bad topology: " ^ msg)

let load path =
  match Json.load path with
  | exception Json.Parse_error msg ->
      Error (Printf.sprintf "%s: not valid JSON: %s" path msg)
  | exception Sys_error msg -> Error msg
  | json -> (
      match of_json json with
      | Ok t -> Ok t
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let pp ppf t =
  Fmt.pf ppf "%d nodes, %d links, %d routes (%a hops)" t.n_nodes
    (Array.length t.links) (Array.length t.routes)
    Fmt.(array ~sep:(any "/") int)
    (route_lengths t)
