type t = {
  capacity : float;
  blackouts : (float * float) array;
  mutable demand : float;
  mutable last : float;
  mutable offered_bits : float;
  mutable lost_bits : float;
  mutable granted_bits : float;
  mutable call_seconds : float;
  mutable n_calls : int;
}

let create ?(blackouts = [||]) ~capacity () =
  assert (capacity > 0.);
  {
    capacity;
    blackouts;
    demand = 0.;
    last = 0.;
    offered_bits = 0.;
    lost_bits = 0.;
    granted_bits = 0.;
    call_seconds = 0.;
    n_calls = 0;
  }

let advance link ~now =
  let dt = now -. link.last in
  if dt > 0. then begin
    link.offered_bits <- link.offered_bits +. (link.demand *. dt);
    link.granted_bits <-
      link.granted_bits +. (Float.min link.demand link.capacity *. dt);
    link.lost_bits <-
      link.lost_bits +. (Float.max 0. (link.demand -. link.capacity) *. dt);
    link.call_seconds <- link.call_seconds +. (float_of_int link.n_calls *. dt);
    link.last <- now
  end

let reset_window link =
  link.offered_bits <- 0.;
  link.lost_bits <- 0.;
  link.granted_bits <- 0.;
  link.call_seconds <- 0.

let down link ~now =
  let windows = link.blackouts in
  let n = Array.length windows in
  n > 0
  && begin
       (* Rightmost window starting at or before [now]. *)
       let lo = ref 0 and hi = ref n in
       while !lo < !hi do
         let mid = (!lo + !hi) / 2 in
         if fst windows.(mid) <= now then lo := mid + 1 else hi := mid
       done;
       !lo > 0 && now < snd windows.(!lo - 1)
     end

let compile_blackouts windows =
  let windows = List.filter (fun (a, r) -> r > a) windows in
  let windows = List.sort compare windows in
  let merged =
    List.fold_left
      (fun acc (a, r) ->
        match acc with
        | (a0, r0) :: rest when a <= r0 -> (a0, Float.max r0 r) :: rest
        | _ -> (a, r) :: acc)
      [] windows
  in
  Array.of_list (List.rev merged)

let of_topology ?(crashes = []) (topo : Topology.t) =
  let n = Topology.n_links topo in
  let per_link = Array.make n [] in
  List.iter
    (fun (id, a, r) ->
      if id >= 0 && id < n then per_link.(id) <- (a, r) :: per_link.(id))
    crashes;
  Array.init n (fun i ->
      create
        ~blackouts:(compile_blackouts per_link.(i))
        ~capacity:topo.Topology.links.(i).Topology.capacity ())
