module Events = Rcbr_queue.Events
module Rng = Rcbr_util.Rng
module Invariant = Rcbr_fault.Invariant
module Service_model = Rcbr_policy.Service_model
module Mts = Rcbr_policy.Mts

type faults = {
  rm_drop : float;
  retx_timeout : float;
  max_retransmits : int;
  crashes : (int * float * float) list;
  fault_seed : int;
  check_invariants : bool;
}

let no_faults =
  {
    rm_drop = 0.;
    retx_timeout = 0.25;
    max_retransmits = 4;
    crashes = [];
    fault_seed = 0;
    check_invariants = false;
  }

let validate fc =
  assert (fc.rm_drop >= 0. && fc.rm_drop <= 1.);
  assert (fc.retx_timeout > 0. && fc.max_retransmits >= 0)

type drop_model = Per_cell | Per_link

type counters = {
  mutable rm_lost : int;
  mutable retransmits : int;
  mutable abandoned : int;
  mutable superseded : int;
  mutable crash_denials : int;
  mutable invariant_failures : int;
}

type plane = {
  faults : faults;
  frng : Rng.t;
  drop : drop_model;
  counters : counters;
}

let plane ~drop faults =
  {
    faults;
    frng = Rng.create faults.fault_seed;
    drop;
    counters =
      {
        rm_lost = 0;
        retransmits = 0;
        abandoned = 0;
        superseded = 0;
        crash_denials = 0;
        invariant_failures = 0;
      };
  }

type pending = {
  tok : Events.token;
  at : float;
  bound : float;
  owner : counters;
}

type t = {
  id : int;
  route : int array;
  transit : bool;
  mutable applied : float;
  mutable gen : int;
  mutable pending : pending option;
  (* Service-model state (DESIGN.md §15).  [demanded] is the rate the
     source currently wants (it can exceed [applied] under a
     downgrading model); [buckets]/[policed_at] are the per-call MTS
     ladder, attached lazily on the first policed change.  The
     Renegotiate model never touches any of these. *)
  mutable demanded : float;
  mutable buckets : Rcbr_traffic.Token_bucket.t array;
  mutable policed_at : float;
}

let make ~id ~route ~transit =
  assert (Array.length route > 0);
  {
    id;
    route;
    transit;
    applied = 0.;
    gen = 0;
    pending = None;
    demanded = 0.;
    buckets = [||];
    policed_at = 0.;
  }

(* Cancelling an armed retransmission counts it as superseded exactly
   when the timer would have popped under the seed engine: always for
   run-to-exhaustion drivers ([bound = infinity]), and only for timers
   at or before the horizon under [Hold_until] (a bounded [Events.run]
   never pops later timers, so the seed never counted them). *)
let cancel_pending t =
  t.gen <- t.gen + 1;
  match t.pending with
  | None -> ()
  | Some p ->
      Events.cancel p.tok;
      t.pending <- None;
      if p.at <= p.bound then p.owner.superseded <- p.owner.superseded + 1

let fits ~(links : Link.t array) t ~rate ~now =
  let delta = rate -. t.applied in
  Array.for_all
    (fun id ->
      let l = links.(id) in
      (not (Link.down l ~now)) && l.Link.demand +. delta <= l.Link.capacity +. 1e-9)
    t.route

let blocked ~(links : Link.t array) t ~now =
  Array.exists (fun id -> Link.down links.(id) ~now) t.route

let settle ~(links : Link.t array) t ~rate =
  let delta = rate -. t.applied in
  Array.iter
    (fun id ->
      let l = links.(id) in
      l.Link.demand <- l.Link.demand +. delta)
    t.route;
  t.applied <- rate

(* Service-model dispatch (DESIGN.md §15).  The Renegotiate branch
   returns [Grant] without touching the links, so drivers keep their
   historical float expressions (and bit-identity) in their own Grant
   branches; the other models probe [fits] / police the MTS ladder and
   hand the granted rate back for the driver to settle and count. *)
let decide model ~(links : Link.t array) t ~now ~demanded =
  match (model : Service_model.t) with
  | Service_model.Renegotiate ->
      t.demanded <- demanded;
      Service_model.Grant
  | Service_model.Downgrade { tiers } ->
      t.demanded <- demanded;
      Service_model.decide_tiers ~tiers ~demanded ~fits:(fun r ->
          fits ~links t ~rate:r ~now)
  | Service_model.Mts_profile p ->
      if Array.length t.buckets = 0 then begin
        t.buckets <- Mts.attach p;
        t.policed_at <- now
      end;
      let elapsed = Float.max 0. (now -. t.policed_at) in
      t.policed_at <- now;
      t.demanded <- demanded;
      let granted =
        Mts.police p t.buckets ~elapsed ~applied:t.applied ~demanded
      in
      if granted >= demanded then Service_model.Grant
      else Service_model.Police_to { granted }

let try_upgrade model ~(links : Link.t array) t ~now =
  match (model : Service_model.t) with
  | Service_model.Renegotiate | Service_model.Mts_profile _ -> None
  | Service_model.Downgrade { tiers } ->
      Service_model.upgrade ~tiers ~demanded:t.demanded ~applied:t.applied
        ~fits:(fun r -> fits ~links t ~rate:r ~now)

(* Every link's demand must equal the sum of the [applied] rates of the
   sessions crossing it — conservation of (desired) bandwidth under any
   interleaving of changes, retransmissions and give-ups.  One
   pseudo-VCI per link holds the recomputed expectation so the
   [Invariant] checker flags aggregate/sum mismatches for us. *)
let audit ~(links : Link.t array) ~sessions =
  let expect = Array.make (Array.length links) 0. in
  List.iter
    (fun s ->
      Array.iter (fun id -> expect.(id) <- expect.(id) +. s.applied) s.route)
    sessions;
  let views =
    Array.init (Array.length links) (fun i ->
        {
          Invariant.index = i;
          capacity = links.(i).Link.capacity;
          reserved = links.(i).Link.demand;
          vci_rates = Some [ (0, expect.(i)) ];
        })
  in
  List.length (Invariant.check ~check_capacity:false views)

type lifetime =
  | Hold_until of float
  | Depart_after_pieces of (t -> now:float -> unit)

type driver = {
  plane_ : plane option;
  reliable_setup : bool;
  lifetime : lifetime;
  before : now:float -> unit;
  on_attempt : now:float -> unit;
  retry : now:float -> bool;
  deliver : t -> now:float -> idx:int -> rate:float -> unit;
}

let dropped p t =
  p.faults.rm_drop > 0.
  &&
  match p.drop with
  | Per_cell -> Rng.float p.frng < p.faults.rm_drop
  | Per_link ->
      Array.exists (fun _ -> Rng.float p.frng < p.faults.rm_drop) t.route

(* One transmission attempt of the rate-change cell across the session's
   route; a drop loses it and arms a retransmission, which a newer
   change (or the departure) cancels out of the queue. *)
let signal d t ~idx ~rate engine =
  cancel_pending t;
  let gen = t.gen in
  let bound =
    match d.lifetime with
    | Hold_until horizon -> horizon
    | Depart_after_pieces _ -> infinity
  in
  let rec attempt retx engine =
    let now = Events.now engine in
    d.on_attempt ~now;
    match d.plane_ with
    | Some p when (idx > 0 || not d.reliable_setup) && dropped p t ->
        p.counters.rm_lost <- p.counters.rm_lost + 1;
        if retx >= p.faults.max_retransmits then begin
          (* Give up signalling and settle on the desired demand anyway:
             the overload shows up in the demand accounting, as for a
             denied increase. *)
          p.counters.abandoned <- p.counters.abandoned + 1;
          d.deliver t ~now ~idx ~rate
        end
        else begin
          let at = now +. p.faults.retx_timeout in
          let tok =
            Events.schedule_token engine ~at (fun engine ->
                t.pending <- None;
                (* Newer changes cancel the token eagerly, so a firing
                   timer is never stale; the guard is pure defence. *)
                if t.gen = gen then begin
                  let now = Events.now engine in
                  if d.retry ~now then begin
                    p.counters.retransmits <- p.counters.retransmits + 1;
                    attempt (retx + 1) engine
                  end
                end)
          in
          t.pending <- Some { tok; at; bound; owner = p.counters }
        end
    | _ -> d.deliver t ~now ~idx ~rate
  in
  attempt 0 engine

let rec play d t pieces idx engine =
  let now = Events.now engine in
  match d.lifetime with
  | Hold_until horizon ->
      if now <= horizon then begin
        d.before ~now;
        let idx = if idx >= Array.length pieces then 0 else idx in
        let duration, rate = pieces.(idx) in
        signal d t ~idx ~rate engine;
        Events.schedule_after engine ~delay:duration
          (play d t pieces (idx + 1))
      end
  | Depart_after_pieces depart ->
      d.before ~now;
      if idx >= Array.length pieces then begin
        cancel_pending t;
        depart t ~now
      end
      else begin
        let duration, rate = pieces.(idx) in
        signal d t ~idx ~rate engine;
        Events.schedule_after engine ~delay:duration
          (play d t pieces (idx + 1))
      end
