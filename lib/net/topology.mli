(** Static network shape for the call-level simulators.

    A topology is a set of nodes, an array of capacitated directed
    links, and an array of routes, each route an array of link ids
    walked in order.  It carries no simulation state — {!Link} holds the
    per-link accounting and {!Session} the per-call state machine — so
    one topology value can be shared by any number of runs.

    The historical experiments are special cases: {!single_link} is the
    Section VI MBAC link, {!parallel_routes} is the Section III-C
    multi-hop network ([routes] disjoint linear paths of [hops] links
    between one source/sink pair, link id [r * hops + h]).  Arbitrary
    graphs — meshes with routes of different lengths sharing links —
    come from {!make} or a JSON file ({!load}). *)

type link = {
  src : int;
  dst : int;
  capacity : float;  (** b/s; must be positive *)
}

type t = private {
  n_nodes : int;
  links : link array;
  routes : int array array;  (** each route: link ids, walked in order *)
}

val make : n_nodes:int -> links:link array -> routes:int array array -> t
(** Validates: positive capacities, link endpoints in [0, n_nodes),
    at least one route, route link ids in range, and every route a
    connected chain (each link starts where the previous one ended).
    Raises [Invalid_argument] otherwise. *)

val single_link : capacity:float -> t
(** Two nodes, one link, one one-hop route. *)

val linear : hops:int -> capacity:float -> t
(** A chain of [hops] links with one route over the full path. *)

val parallel_routes : routes:int -> hops:int -> capacity:float -> t
(** [routes] disjoint linear paths of [hops] links each, sharing the
    source and sink nodes; route [r] is links
    [r * hops .. r * hops + hops - 1] in hop order — the layout the
    Section III-C experiment historically hard-coded. *)

val grid : rows:int -> cols:int -> capacity:float -> t
(** A [rows x cols] city-style mesh: east links [(r,c) -> (r,c+1)]
    (ids [r*(cols-1)+c]) and south links [(r,c) -> (r+1,c)] (ids
    [rows*(cols-1) + r*cols + c]).  Routes: every full west-to-east
    row, every full north-to-south column, and the two corner-to-corner
    staircases (east-first and south-first), so cross-cutting paths
    share links with the row/column sets — [rows + cols + 2] routes
    total.  Requires [rows, cols >= 2]. *)

val n_links : t -> int
val n_routes : t -> int

val route_lengths : t -> int array
(** Hops per route, in route order. *)

val of_json : Rcbr_util.Json.t -> (t, string) result
(** Build from [{ "nodes": n, "links": [{"src","dst","capacity"}...],
    "routes": [[link ids]...] }].  Total: every malformed input —
    missing or mistyped fields, nonpositive capacities, out-of-range
    link ids or endpoints, dangling route hops, empty route lists —
    maps to a descriptive [Error], never an exception. *)

val load : string -> (t, string) result
(** {!of_json} on a JSON file — the [--topology mesh:FILE] loader.
    Unreadable files and non-JSON bytes also land in [Error], with the
    path prefixed to the message. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: nodes, links, routes with their lengths. *)
