(** Per-call state machine over a {!Topology}: setup, renegotiations
    over an optionally unreliable signalling plane (with settle/deny
    semantics), and departure.

    A session walks the [(duration_s, rate)] pieces of its call
    schedule on a {!Rcbr_queue.Events} engine.  Each rate change is
    signalled across the session's route; with a fault {!plane}
    attached the change cell can be dropped ({!faults.rm_drop}) and is
    then retransmitted after {!faults.retx_timeout} until
    {!faults.max_retransmits}, after which the change is applied anyway
    — settle semantics: the overload shows up in the demand
    accounting, exactly as for a denied increase.  A newer change for
    the same session (or its departure) bumps {!t.gen} and cancels the
    pending retransmission.

    The experiment-specific float expressions — how delivery updates
    link demand, what counts as a denial — live in the {!driver}
    hooks so the historical simulators stay bit-identical to their
    pre-refactor behaviour (DESIGN.md §10); the machine itself (fault
    draws, retransmit scheduling, generation bookkeeping, blackout and
    fit checks, conservation audits) is shared. *)

(** {1 Faults} *)

type faults = {
  rm_drop : float;  (** loss probability of a signalling cell (see {!drop_model}) *)
  retx_timeout : float;  (** seconds before a lost cell is re-sent *)
  max_retransmits : int;
      (** per rate change; afterwards the change is applied anyway
          (settle semantics) *)
  crashes : (int * float * float) list;
      (** [(link, at, recover)] signalling blackouts: increases crossing
          the link while it is down are denied *)
  fault_seed : int;
      (** faults draw from their own stream, so [rm_drop = 0.] and no
          crashes reproduce the fault-free run bit for bit *)
  check_invariants : bool;
      (** periodically audit demand = sum of crossing sessions' rates *)
}

val no_faults : faults
(** No loss, no crashes, no auditing. *)

val validate : faults -> unit
(** Asserts the probability range, positive timeout and nonnegative
    retransmit cap. *)

type drop_model =
  | Per_cell  (** one loss draw per transmission (the MBAC link) *)
  | Per_link
      (** one draw per route link, short-circuiting at the first loss
          (the multi-hop experiment: every hop is a point of failure) *)

type counters = {
  mutable rm_lost : int;  (** signalling cells the fault plane swallowed *)
  mutable retransmits : int;
  mutable abandoned : int;  (** changes applied only after give-up *)
  mutable superseded : int;  (** retransmissions cancelled by a newer change *)
  mutable crash_denials : int;  (** denials caused purely by a crashed link *)
  mutable invariant_failures : int;  (** 0 unless there is a bookkeeping bug *)
}

type plane = {
  faults : faults;
  frng : Rcbr_util.Rng.t;  (** the separate fault stream *)
  drop : drop_model;
  counters : counters;
}

val plane : drop:drop_model -> faults -> plane
(** Fresh zeroed counters and a [fault_seed]ed stream. *)

(** {1 Sessions} *)

type pending = {
  tok : Rcbr_queue.Events.token;  (** the armed retransmission timer *)
  at : float;  (** when it would fire *)
  bound : float;
      (** horizon up to which a cancelled timer counts as superseded
          (the seed engine only counted timers that actually popped,
          i.e. those at or before the driver's run bound) *)
  owner : counters;
}

type t = {
  id : int;  (** caller's label (the MBAC call id) *)
  route : int array;  (** link ids, in hop order *)
  transit : bool;  (** multi-link call (vs single-hop cross traffic) *)
  mutable applied : float;
      (** the rate the links currently account for this session; lags
          the demanded rate while a change cell is in retransmission *)
  mutable gen : int;
      (** bumped per rate change and on departure; guards against
          stale retransmissions *)
  mutable pending : pending option;
      (** the armed retransmission, if any; cancelled out of the event
          queue by the next change or the departure, so dead timers
          never accumulate under storm workloads *)
  mutable demanded : float;
      (** the rate the source currently wants; exceeds [applied] while
          the call is downgraded (service models, DESIGN.md §15) *)
  mutable buckets : Rcbr_traffic.Token_bucket.t array;
      (** per-call MTS policer ladder, attached lazily by {!decide};
          empty under the other models *)
  mutable policed_at : float;
      (** time of the last MTS policing decision *)
}

val make : id:int -> route:int array -> transit:bool -> t

val cancel_pending : t -> unit
(** Bump [gen] and cancel any armed retransmission out of the event
    queue (counting it as superseded per [pending.bound]). *)

(** {1 Route queries} *)

val fits : links:Link.t array -> t -> rate:float -> now:float -> bool
(** Whether every route link is up and can absorb the rate delta
    within capacity (1e-9 slack for float accumulation). *)

val blocked : links:Link.t array -> t -> now:float -> bool
(** Whether any route link is inside a crash blackout. *)

val settle : links:Link.t array -> t -> rate:float -> unit
(** Account the demanded [rate] on every route link (settle semantics:
    the demand moves whether or not it {!fits}) and record it as
    [applied]. *)

(** {1 Service models (DESIGN.md §15)} *)

val decide :
  Rcbr_policy.Service_model.t -> links:Link.t array -> t -> now:float ->
  demanded:float -> Rcbr_policy.Service_model.decision
(** What the service model grants for a demanded rate change on this
    session.  [Renegotiate] returns [Grant] without touching the links
    (drivers keep their historical float expressions, hence
    bit-identity); [Downgrade] runs the ladder walk against {!fits};
    [Mts_profile] polices against the call's bucket ladder (attached
    lazily) and returns [Police_to] when it clips.  Updates
    [t.demanded]; the caller settles the granted rate and counts. *)

val try_upgrade :
  Rcbr_policy.Service_model.t -> links:Link.t array -> t -> now:float ->
  float option
(** Spare-capacity upgrade for a downgraded session ([Downgrade] model
    only): the new granted rate if a higher tier (or the full demanded
    rate) fits, [None] otherwise. *)

val audit : links:Link.t array -> sessions:t list -> int
(** Conservation check: every link's demand must equal the sum of the
    [applied] rates of the sessions crossing it, via
    {!Rcbr_fault.Invariant.check} on per-link views.  Returns the
    number of violations (0 unless there is a bookkeeping bug). *)

(** {1 The state machine} *)

type lifetime =
  | Hold_until of float
      (** loop the pieces until the horizon (the multi-hop calls) *)
  | Depart_after_pieces of (t -> now:float -> unit)
      (** play the pieces once, then run the departure hook (the MBAC
          calls); [gen] is bumped first so pending retransmissions die *)

type driver = {
  plane_ : plane option;  (** [None]: reliable signalling *)
  reliable_setup : bool;
      (** piece 0 is signalled without loss (MBAC: admission already
          happened at the arrival event) *)
  lifetime : lifetime;
  before : now:float -> unit;
      (** accounting hook at the top of every piece event *)
  on_attempt : now:float -> unit;
      (** accounting hook at the top of every transmission attempt *)
  retry : now:float -> bool;
      (** guard run when a retransmission timer fires (after the [gen]
          check); returning false drops the retransmission silently *)
  deliver : t -> now:float -> idx:int -> rate:float -> unit;
      (** the change cell arrived (or the machine gave up): apply the
          rate — demand update, denial counting, controller callbacks *)
}

val play : driver -> t -> (float * float) array -> int -> Rcbr_queue.Events.t -> unit
(** [play d t pieces idx engine] is the piece event: fire piece [idx]
    (signal its rate, schedule the next piece after its duration), or
    depart / stop at the horizon per [d.lifetime].  Partially applied,
    it is the [Events] callback for the session's next piece. *)

val signal : driver -> t -> idx:int -> rate:float -> Rcbr_queue.Events.t -> unit
(** One rate change: bump [gen] and run transmission attempts until
    the cell is delivered, abandoned (then delivered with settle
    semantics) or superseded.  Exposed for drivers that signal outside
    the piece walk. *)
