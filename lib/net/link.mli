(** Per-link simulation state: demand/grant/loss accounting and crash
    blackout windows.

    One record unifies what the call-level simulators used to keep
    separately — the MBAC link's bit counters and the multi-hop
    experiment's per-hop demand cells and merged crash intervals.  The
    fields are exposed because the experiment drivers update them with
    driver-specific float expressions that must stay bit-identical to
    the historical code (see DESIGN.md §10); treat them as owned by the
    driver that created the link. *)

type t = {
  capacity : float;  (** b/s *)
  blackouts : (float * float) array;
      (** merged, start-sorted [at, recover) crash windows; see {!down} *)
  mutable demand : float;  (** sum of the crossing calls' demanded rates *)
  mutable last : float;  (** time of last {!advance} *)
  mutable offered_bits : float;
  mutable lost_bits : float;
  mutable granted_bits : float;
  mutable call_seconds : float;  (** integral of [n_calls], for the mean *)
  mutable n_calls : int;
}

val create : ?blackouts:(float * float) array -> capacity:float -> unit -> t
(** Zeroed accounting.  Requires a positive capacity. *)

val of_topology : ?crashes:(int * float * float) list -> Topology.t -> t array
(** One link state per topology link, in link-id order; [crashes]
    [(link, at, recover)] entries are grouped per link and compiled
    with {!compile_blackouts} (ids out of range are ignored, matching
    the historical hop filter). *)

val advance : t -> now:float -> unit
(** Integrate offered/granted/lost bits and call-seconds since [last]
    under the current demand, then set [last <- now].  No-op when
    [now <= last]. *)

val reset_window : t -> unit
(** Zero the per-window integrals (bits and call-seconds) — the MBAC
    sampling window boundary.  Demand and [last] are kept. *)

val down : t -> now:float -> bool
(** Whether [now] falls inside a blackout window — a binary search for
    the rightmost window starting at or before [now]. *)

val compile_blackouts : (float * float) list -> (float * float) array
(** Sort and merge overlapping [at, recover) windows into a
    start-sorted disjoint array (empty windows dropped), so membership
    is a binary search equal to [List.exists] over the raw list. *)
