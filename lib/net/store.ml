(* Struct-of-arrays session store for the million-call engine.

   One {!Session.t} record per call costs a heap block, a route array
   and pointer-chasing per event; at 10^6 concurrent calls that is the
   hot loop.  Here every per-call field lives in a packed parallel
   array indexed by an integer handle, routes are slices of one shared
   int arena, and freed handles recycle through a stack — so steady
   state allocates nothing.

   The route queries ([fits]/[blocked]/[settle]/[audit]) evaluate the
   exact float expressions of their {!Session} counterparts, in the
   same order, so a store-backed run is bit-identical to a
   record-backed one (property-tested in test/test_net.ml via
   {!to_session}). *)

type handle = int

type t = {
  mutable applied : float array;
  mutable demanded : float array;  (* source-wanted rate (service models) *)
  mutable level : int array;  (* current rate-level id *)
  mutable cursor : int array;  (* schedule cursor (piece index) *)
  mutable gen : int array;
  mutable id : int array;
  mutable route_off : int array;  (* slice into [routes] *)
  mutable route_len : int array;
  mutable flags : Bytes.t;  (* bit 0: live, bit 1: transit *)
  mutable routes : int array;  (* shared route arena, append-only *)
  mutable routes_len : int;
  mutable routes_dead : int;  (* arena words owned by freed handles *)
  mutable free : int array;  (* free-handle stack *)
  mutable free_len : int;
  mutable hwm : int;  (* handles ever touched: live + free *)
  mutable live : int;
}

let create ?(capacity_hint = 16) () =
  let cap = max 16 capacity_hint in
  {
    applied = Array.make cap 0.;
    demanded = Array.make cap 0.;
    level = Array.make cap 0;
    cursor = Array.make cap 0;
    gen = Array.make cap 0;
    id = Array.make cap 0;
    route_off = Array.make cap 0;
    route_len = Array.make cap 0;
    flags = Bytes.make cap '\000';
    routes = Array.make (4 * cap) 0;
    routes_len = 0;
    routes_dead = 0;
    free = Array.make cap 0;
    free_len = 0;
    hwm = 0;
    live = 0;
  }

let live_count t = t.live
let high_water t = t.hwm
let is_live t h = Char.code (Bytes.get t.flags h) land 1 <> 0

let grow_handles t =
  let cap = Array.length t.applied in
  let ncap = 2 * cap in
  let gf a fill =
    let n = Array.make ncap fill in
    Array.blit a 0 n 0 cap;
    n
  in
  t.applied <- gf t.applied 0.;
  t.demanded <- gf t.demanded 0.;
  t.level <- gf t.level 0;
  t.cursor <- gf t.cursor 0;
  t.gen <- gf t.gen 0;
  t.id <- gf t.id 0;
  t.route_off <- gf t.route_off 0;
  t.route_len <- gf t.route_len 0;
  t.free <- gf t.free 0;
  let nflags = Bytes.make ncap '\000' in
  Bytes.blit t.flags 0 nflags 0 cap;
  t.flags <- nflags

(* Reclaim arena words owned by freed handles: rewrite the arena with
   the live routes in handle order.  Deterministic — depends only on
   the live handle set. *)
let compact_routes t =
  let narena = Array.make (max 64 (Array.length t.routes / 2)) 0 in
  let narena = ref narena in
  let k = ref 0 in
  for h = 0 to t.hwm - 1 do
    if is_live t h then begin
      let len = t.route_len.(h) in
      if !k + len > Array.length !narena then begin
        let bigger = Array.make (max (2 * Array.length !narena) (!k + len)) 0 in
        Array.blit !narena 0 bigger 0 !k;
        narena := bigger
      end;
      Array.blit t.routes t.route_off.(h) !narena !k len;
      t.route_off.(h) <- !k;
      k := !k + len
    end
  done;
  t.routes <- !narena;
  t.routes_len <- !k;
  t.routes_dead <- 0

let acquire t ~id ~route ~transit =
  assert (Array.length route > 0);
  let h =
    if t.free_len > 0 then begin
      t.free_len <- t.free_len - 1;
      t.free.(t.free_len)
    end
    else begin
      if t.hwm = Array.length t.applied then grow_handles t;
      let h = t.hwm in
      t.hwm <- t.hwm + 1;
      h
    end
  in
  let rlen = Array.length route in
  if t.routes_dead > 4096 && t.routes_dead > t.routes_len / 2 then
    compact_routes t;
  if t.routes_len + rlen > Array.length t.routes then begin
    let bigger =
      Array.make (max (2 * Array.length t.routes) (t.routes_len + rlen)) 0
    in
    Array.blit t.routes 0 bigger 0 t.routes_len;
    t.routes <- bigger
  end;
  Array.blit route 0 t.routes t.routes_len rlen;
  t.route_off.(h) <- t.routes_len;
  t.route_len.(h) <- rlen;
  t.routes_len <- t.routes_len + rlen;
  t.applied.(h) <- 0.;
  t.demanded.(h) <- 0.;
  t.level.(h) <- 0;
  t.cursor.(h) <- 0;
  t.gen.(h) <- 0;
  t.id.(h) <- id;
  Bytes.set t.flags h (Char.chr (1 lor if transit then 2 else 0));
  t.live <- t.live + 1;
  h

let release t h =
  assert (is_live t h);
  Bytes.set t.flags h '\000';
  t.routes_dead <- t.routes_dead + t.route_len.(h);
  t.free.(t.free_len) <- h;
  t.free_len <- t.free_len + 1;
  t.live <- t.live - 1

let id t h = t.id.(h)
let applied t h = t.applied.(h)
let demanded t h = t.demanded.(h)
let set_demanded t h r = t.demanded.(h) <- r
let level t h = t.level.(h)
let set_level t h l = t.level.(h) <- l
let cursor t h = t.cursor.(h)
let set_cursor t h c = t.cursor.(h) <- c
let gen t h = t.gen.(h)
let bump_gen t h = t.gen.(h) <- t.gen.(h) + 1
let transit t h = Char.code (Bytes.get t.flags h) land 2 <> 0

let route_iter t h f =
  let off = t.route_off.(h) and len = t.route_len.(h) in
  for i = off to off + len - 1 do
    f t.routes.(i)
  done

(* The queries below are the Session ones verbatim, with the record
   field reads swapped for array reads. *)

let fits ~(links : Link.t array) t h ~rate ~now =
  let delta = rate -. t.applied.(h) in
  let off = t.route_off.(h) and len = t.route_len.(h) in
  let ok = ref true in
  let i = ref off in
  while !ok && !i < off + len do
    let l = links.(t.routes.(!i)) in
    ok :=
      (not (Link.down l ~now)) && l.Link.demand +. delta <= l.Link.capacity +. 1e-9;
    incr i
  done;
  !ok

let blocked ~(links : Link.t array) t h ~now =
  let off = t.route_off.(h) and len = t.route_len.(h) in
  let hit = ref false in
  let i = ref off in
  while (not !hit) && !i < off + len do
    hit := Link.down links.(t.routes.(!i)) ~now;
    incr i
  done;
  !hit

let settle ~(links : Link.t array) t h ~rate =
  let delta = rate -. t.applied.(h) in
  route_iter t h (fun lid ->
      let l = links.(lid) in
      l.Link.demand <- l.Link.demand +. delta);
  t.applied.(h) <- rate

(* Service-model ladder queries (DESIGN.md §15), the handle-indexed
   twins of {!Session.decide}/{!Session.try_upgrade} for the Downgrade
   model.  MTS policing state stays driver-side (per-shard arrays), so
   only the demanded column lives here. *)

let decide_downgrade ~(links : Link.t array) t h ~tiers ~demanded ~now =
  t.demanded.(h) <- demanded;
  Rcbr_policy.Service_model.decide_tiers ~tiers ~demanded ~fits:(fun r ->
      fits ~links t h ~rate:r ~now)

let try_upgrade ~(links : Link.t array) t h ~tiers ~now =
  Rcbr_policy.Service_model.upgrade ~tiers ~demanded:t.demanded.(h)
    ~applied:t.applied.(h)
    ~fits:(fun r -> fits ~links t h ~rate:r ~now)

let iter_live t f =
  for h = 0 to t.hwm - 1 do
    if is_live t h then f h
  done

let audit ~(links : Link.t array) t =
  let expect = Array.make (Array.length links) 0. in
  iter_live t (fun h ->
      route_iter t h (fun lid -> expect.(lid) <- expect.(lid) +. t.applied.(h)));
  let views =
    Array.init (Array.length links) (fun i ->
        {
          Rcbr_fault.Invariant.index = i;
          capacity = links.(i).Link.capacity;
          reserved = links.(i).Link.demand;
          vci_rates = Some [ (0, expect.(i)) ];
        })
  in
  List.length (Rcbr_fault.Invariant.check ~check_capacity:false views)

let to_session t h =
  let route = Array.make t.route_len.(h) 0 in
  Array.blit t.routes t.route_off.(h) route 0 t.route_len.(h);
  let s = Session.make ~id:t.id.(h) ~route ~transit:(transit t h) in
  s.Session.applied <- t.applied.(h);
  s.Session.gen <- t.gen.(h);
  s
