(** Struct-of-arrays session store for 10^6+ concurrent calls.

    Per-call state lives in packed parallel arrays indexed by an
    integer {!handle} — applied rate, rate-level id, schedule cursor,
    generation counter, caller id — with routes stored as slices of a
    shared int arena and freed handles recycled through a stack, so
    the steady-state hot loop allocates nothing.  The route queries
    evaluate the exact float expressions of their {!Session}
    counterparts in the same order, making a store-backed simulation
    bit-identical to a record-backed one; {!to_session} materializes
    the equivalent {!Session.t} record view for tests and debugging.

    Handles are only valid between their {!acquire} and {!release};
    the store does not check for stale handles beyond the [is_live]
    assertion in [release]. *)

type t

type handle = int
(** Dense index into the parallel arrays. *)

val create : ?capacity_hint:int -> unit -> t

val live_count : t -> int
(** Currently acquired handles. *)

val high_water : t -> int
(** Handles ever touched; valid handles are [< high_water]. *)

val is_live : t -> handle -> bool

val acquire : t -> id:int -> route:int array -> transit:bool -> handle
(** Fresh call with [applied = 0], level/cursor/gen zeroed; the route
    (non-empty, link ids in hop order) is copied into the arena. *)

val release : t -> handle -> unit
(** Free the handle for reuse.  Requires it live. *)

(** {1 Field access} *)

val id : t -> handle -> int
val applied : t -> handle -> float

val demanded : t -> handle -> float
(** The rate the source currently wants; exceeds [applied] while the
    call is downgraded (service models, DESIGN.md §15). *)

val set_demanded : t -> handle -> float -> unit
val level : t -> handle -> int
val set_level : t -> handle -> int -> unit
val cursor : t -> handle -> int
val set_cursor : t -> handle -> int -> unit
val gen : t -> handle -> int
val bump_gen : t -> handle -> unit
val transit : t -> handle -> bool
val route_iter : t -> handle -> (int -> unit) -> unit
(** Route link ids in hop order, without materializing an array. *)

(** {1 Route queries — Session semantics} *)

val fits : links:Link.t array -> t -> handle -> rate:float -> now:float -> bool
(** Exactly {!Session.fits}. *)

val blocked : links:Link.t array -> t -> handle -> now:float -> bool
(** Exactly {!Session.blocked}. *)

val settle : links:Link.t array -> t -> handle -> rate:float -> unit
(** Exactly {!Session.settle}. *)

(** {1 Service models (DESIGN.md §15)} *)

val decide_downgrade :
  links:Link.t array -> t -> handle -> tiers:float array -> demanded:float ->
  now:float -> Rcbr_policy.Service_model.decision
(** The {!Session.decide} ladder walk for a store-backed call under the
    Downgrade model: records [demanded] and grants the highest tier
    that {!fits}.  The caller settles the granted rate and counts. *)

val try_upgrade :
  links:Link.t array -> t -> handle -> tiers:float array -> now:float ->
  float option
(** Spare-capacity upgrade: the new granted rate if a higher tier (or
    the full demanded rate) fits, [None] otherwise. *)

val audit : links:Link.t array -> t -> int
(** Conservation check over the live population, as {!Session.audit}
    (live handles visited in ascending handle order). *)

val iter_live : t -> (handle -> unit) -> unit
(** Live handles in ascending order. *)

val to_session : t -> handle -> Session.t
(** Record view of the handle (fresh arrays; mutating it does not
    affect the store). *)
