(** Chernoff estimates for bufferless statistical multiplexing
    (formulas (10)-(12) of the paper).

    Each of [n] independent calls spends a fraction [p_i] of its time
    demanding bandwidth [e_i]; the probability that the total demand
    exceeds the link capacity [C = n*c] is estimated as
    [exp (-n * I(c))] where [I] is the Legendre transform of the log-MGF
    of the per-call demand.  This is the loss estimate of the shared
    buffer scenario (with [e_i] the subchain mean rates) and the
    renegotiation-failure estimate of RCBR (with [e_i] the subchain
    equivalent bandwidths), and the admission-control test of
    Section VI. *)

type marginal = (float * float) array
(** [(probability, bandwidth)] pairs.  Probabilities must be
    nonnegative and sum to 1 (within 1e-6). *)

val validate : marginal -> unit
(** Raises [Invalid_argument] on a malformed marginal. *)

val mean : marginal -> float
val max_level : marginal -> float

val log_mgf : marginal -> theta:float -> float
(** [log sum_i p_i exp(theta e_i)], computed stably. *)

val rate_function : marginal -> float
  -> float
(** [rate_function m c] = [sup_theta (theta*c - log_mgf m theta)] over
    [theta >= 0].  Zero for [c <= mean m]; [+infinity] for
    [c > max_level m] (and for [c = max_level] it equals
    [-log P(max)]). *)

val overflow_estimate : marginal -> n:int -> capacity_per_call:float -> float
(** [exp (-n * rate_function m c)], the Chernoff estimate of
    [P(sum of n iid demands > n*c)].  Requires [n > 0]. *)

val capacity_for_target :
  ?tol:float -> marginal -> n:int -> target:float -> float
(** Smallest per-call capacity [c] whose {!overflow_estimate} is
    [<= target].  Requires [0 < target < 1].  Returns [max_level] if even
    that cannot meet the target (it always can, conservatively). *)

val max_calls : marginal -> capacity:float -> target:float -> int
(** Formula (12) turned into an admission rule: the largest [n] such that
    [overflow_estimate ~n ~capacity_per_call:(capacity /. n) <= target].
    0 when even one call misses the target. *)

(** Reusable warm-started solver — the admission fast path.

    A solver owns a quantized log-MGF table (per-level bandwidth and
    cached log-probability in flat arrays, refilled in place), an
    allocation-free {!Solver.log_mgf}, and warm-start state for the
    theta* bracket and the {!Solver.max_calls} integer search.

    Numerical contract: for the same marginal, every solver query
    returns the {e exact} float (and hence the exact admit/deny
    decision) of the corresponding cold module-level function above.
    The warm starts only change which intermediate points are probed:
    the theta bracket walks to the same minimal power of two the cold
    doubling scan finds (the set of decreasing-objective powers of two
    is upward closed for a concave objective), and the integer search
    gallops out from the previous answer before bisecting the same
    monotone predicate.  When a hint is wrong the search degrades to the
    cold scan, never to a different answer.

    Typical uses: an admission controller loads the current aggregate
    histogram into its solver before every decision (see
    [Rcbr_admission.Controller]); a capacity sweep builds one solver per
    marginal and reuses it across all [n] / capacity / target queries. *)
module Solver : sig
  type t

  val create : unit -> t
  (** Empty solver; load a distribution before querying. *)

  val of_marginal : marginal -> t
  val set_marginal : t -> marginal -> unit
  (** Refill the table from a validated marginal (entries with [p = 0]
      are skipped), keeping warm-start state and scratch storage. *)

  val reset : t -> unit
  (** Begin an incremental weighted load: {!reset}, then {!push} each
      (level, weight) pair, then {!commit_weighted}. *)

  val push : t -> level:float -> weight:float -> unit
  (** Append a level with a raw nonnegative weight; zero-weight levels
      are skipped.  Only valid between {!reset} and {!commit_weighted}. *)

  val commit_weighted : t -> unit
  (** Normalize the pushed weights into probabilities (requires positive
      total weight) and finish the load. *)

  val n_levels : t -> int
  val mean : t -> float
  val max_level : t -> float

  val log_mgf : t -> theta:float -> float
  (** Bit-identical to {!val:log_mgf} on the loaded distribution;
      allocation-free. *)

  val rate_function : t -> float -> float
  val overflow_estimate : t -> n:int -> capacity_per_call:float -> float
  val capacity_for_target : ?tol:float -> t -> n:int -> target:float -> float

  val max_calls : t -> capacity:float -> target:float -> int
  (** Warm-started admission limit; equal to {!val:max_calls} on the
      loaded distribution for every (capacity, target).  Memoized on
      the committed distribution: repeating the query without an
      intervening load returns the stored answer in O(1), which makes
      a batched admission tick (many decisions against one commit)
      cost one search total. *)

  type stats = {
    mgf_evals : int;  (** log-MGF evaluations (the innermost kernel) *)
    fits_evals : int;  (** admission-predicate probes across searches *)
    queries : int;  (** rate-function queries *)
    memo_hits : int;  (** [max_calls] answers served from the memo *)
  }

  val stats : t -> stats
  (** Cumulative counters since {!create}; cheap to read. *)
end
