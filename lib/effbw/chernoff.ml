module Numeric = Rcbr_util.Numeric

type marginal = (float * float) array

let validate m =
  if Array.length m = 0 then invalid_arg "Chernoff: empty marginal";
  let total = ref 0. in
  Array.iter
    (fun (p, _) ->
      if p < 0. then invalid_arg "Chernoff: negative probability";
      total := !total +. p)
    m;
  if Float.abs (!total -. 1.) > 1e-6 then
    invalid_arg "Chernoff: probabilities do not sum to 1"

let mean m = Array.fold_left (fun acc (p, e) -> acc +. (p *. e)) 0. m

let max_level m =
  Array.fold_left
    (fun acc (p, e) -> if p > 0. then max acc e else acc)
    neg_infinity m

let log_mgf m ~theta =
  let terms =
    Array.map
      (fun (p, e) -> if Float.equal p 0. then neg_infinity else log p +. (theta *. e))
      m
  in
  Rcbr_util.Numeric.log_sum_exp terms

let rate_function m c =
  let mu = mean m in
  let top = max_level m in
  if c <= mu then 0.
  else if c > top then infinity
  else begin
    let objective theta = (theta *. c) -. log_mgf m ~theta in
    (* The objective is concave; grow the bracket until it is decreasing
       at the right end, then golden-section. *)
    let hi = ref 1. in
    let decreasing_at x = objective x < objective (0.99 *. x) in
    while (not (decreasing_at !hi)) && !hi < 1e9 do
      hi := !hi *. 2.
    done;
    let theta_star = Numeric.golden_max ~f:objective 0. !hi in
    Float.max 0. (objective theta_star)
  end

let overflow_estimate m ~n ~capacity_per_call =
  assert (n > 0);
  let i = rate_function m capacity_per_call in
  if Float.equal i infinity then 0. else exp (-.float_of_int n *. i)

let capacity_for_target ?(tol = 1e-6) m ~n ~target =
  assert (target > 0. && target < 1.);
  let lo = mean m and hi = max_level m in
  if overflow_estimate m ~n ~capacity_per_call:lo <= target then lo
  else
    Numeric.find_min_such_that ~tol
      ~pred:(fun c -> overflow_estimate m ~n ~capacity_per_call:c <= target)
      lo hi

let max_calls m ~capacity ~target =
  assert (capacity >= 0.);
  let mu = mean m in
  if mu <= 0. then max_int
  else begin
    let fits n =
      n > 0
      && overflow_estimate m ~n ~capacity_per_call:(capacity /. float_of_int n)
         <= target
    in
    (* Overflow probability is monotone in n (same capacity shared by
       more calls), so binary search over integers. *)
    let upper = int_of_float (capacity /. mu) + 1 in
    if not (fits 1) then 0
    else begin
      let lo = ref 1 and hi = ref upper in
      (* Invariant: fits !lo, not (fits (!hi)) or hi = upper boundary. *)
      if fits upper then upper
      else begin
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if fits mid then lo := mid else hi := mid
        done;
        !lo
      end
    end
  end

(* --- Reusable warm-started solver (the admission fast path) ---------- *)

module Solver = struct
  (* The solver keeps the quantized log-MGF table — per-level bandwidth
     [e] and cached [log p] — in flat scratch arrays that are refilled
     in place by [set_marginal]/[reset]+[push]+[commit], so a decision
     loop (admission control, capacity sweeps) allocates nothing per
     query once the arrays reach their high-water size.

     Numerical contract: for the same marginal, every query returns the
     exact float the cold module-level function returns.  [log_mgf] does
     the same two passes in the same index order as
     [Numeric.log_sum_exp] over the same terms (entries with p = 0
     contribute a [neg_infinity] term there, i.e. an exact [+. 0.] in
     the sum, so skipping them at load time preserves every bit), and
     the warm starts below only change *which* queries are made, never
     the value a query returns. *)
  type t = {
    mutable e : float array;  (* level bandwidths, p > 0 entries only *)
    mutable logp : float array;  (* log p per level *)
    mutable n : int;  (* active prefix of [e]/[logp] *)
    mutable mean : float;
    mutable top : float;
    mutable loading : bool;  (* between [reset] and [commit] *)
    (* Warm-start state. *)
    mutable bracket_hint : int;  (* exponent k of the last 2^k theta bracket *)
    mutable calls_hint : int;  (* last [max_calls] answer; 0 = none *)
    (* Memoized [max_calls]: valid while the committed distribution is
       unchanged ([stamp]) and the query point repeats exactly.  This is
       what makes a batched admission tick O(1) per repeat decision. *)
    mutable stamp : int;  (* bumped whenever the distribution changes *)
    mutable memo_stamp : int;  (* -1: no memo *)
    mutable memo_capacity : float;
    mutable memo_target : float;
    mutable memo_answer : int;
    (* Instrumentation. *)
    mutable mgf_evals : int;
    mutable fits_evals : int;
    mutable queries : int;
    mutable memo_hits : int;
  }

  let create () =
    {
      e = Array.make 16 0.;
      logp = Array.make 16 0.;
      n = 0;
      mean = 0.;
      top = neg_infinity;
      loading = false;
      bracket_hint = -1;
      calls_hint = 0;
      stamp = 0;
      memo_stamp = -1;
      memo_capacity = 0.;
      memo_target = 0.;
      memo_answer = 0;
      mgf_evals = 0;
      fits_evals = 0;
      queries = 0;
      memo_hits = 0;
    }

  let grow t =
    let cap = 2 * Array.length t.e in
    let e = Array.make cap 0. and logp = Array.make cap 0. in
    Array.blit t.e 0 e 0 t.n;
    Array.blit t.logp 0 logp 0 t.n;
    t.e <- e;
    t.logp <- logp

  let reset t =
    t.n <- 0;
    t.loading <- true

  (* Raw entry: [logp] is already the log-probability. *)
  let push_log t ~level ~logp =
    assert (t.loading);
    if t.n >= Array.length t.e then grow t;
    t.e.(t.n) <- level;
    t.logp.(t.n) <- logp;
    t.n <- t.n + 1

  let commit t =
    assert (t.loading);
    t.loading <- false;
    t.stamp <- t.stamp + 1;
    let mu = ref 0. and top = ref neg_infinity in
    for i = 0 to t.n - 1 do
      let p = exp t.logp.(i) in
      mu := !mu +. (p *. t.e.(i));
      if p > 0. then top := Float.max !top t.e.(i)
    done;
    t.mean <- !mu;
    t.top <- !top

  let set_marginal t m =
    reset t;
    Array.iter (fun (p, e) -> if p > 0. then push_log t ~level:e ~logp:(log p)) m;
    t.loading <- false;
    t.stamp <- t.stamp + 1;
    (* Mean and max over the raw marginal, matching the cold functions
       bit for bit (p = 0 entries add an exact 0.). *)
    t.mean <- mean m;
    t.top <- max_level m

  let of_marginal m =
    let t = create () in
    set_marginal t m;
    t

  (* Weighted load for the admission controllers: entries arrive as
     (bandwidth, weight >= 0) pairs from a histogram traversal; [commit]
     then normalizes.  Weights <= 0 are skipped. *)
  let push t ~level ~weight =
    assert (t.loading);
    if weight > 0. then begin
      if t.n >= Array.length t.e then grow t;
      t.e.(t.n) <- level;
      t.logp.(t.n) <- weight;  (* raw until [commit_weighted] *)
      t.n <- t.n + 1
    end

  let commit_weighted t =
    assert (t.loading);
    let total = ref 0. in
    for i = 0 to t.n - 1 do
      total := !total +. t.logp.(i)
    done;
    let total = !total in
    assert (total > 0.);
    for i = 0 to t.n - 1 do
      t.logp.(i) <- log (t.logp.(i) /. total)
    done;
    commit t

  let n_levels t = t.n
  let mean t = t.mean
  let max_level t = t.top

  let log_mgf t ~theta =
    assert (not t.loading);
    assert (t.n > 0);
    t.mgf_evals <- t.mgf_evals + 1;
    (* Two passes, same order as [Numeric.log_sum_exp] on the term
       array; no allocation. *)
    let m = ref neg_infinity in
    for i = 0 to t.n - 1 do
      let term = t.logp.(i) +. (theta *. t.e.(i)) in
      if term > !m then m := term
    done;
    let m = !m in
    if Float.equal m neg_infinity then neg_infinity
    else begin
      let s = ref 0. in
      for i = 0 to t.n - 1 do
        s := !s +. exp (t.logp.(i) +. (theta *. t.e.(i)) -. m)
      done;
      m +. log !s
    end

  (* Theta bracket for the golden section: the cold scan doubles [hi]
     from 1 until the objective is decreasing at [hi] (first k >= 0 with
     [decreasing_at (2^k)], capped at 1e9).  For a concave objective the
     set of such k is upward closed — at most one k straddles the peak
     (0.99*2^k < theta* < 2^k needs theta* within 1% of 2^k, and the
     next k up is already past it) — so walking *down* from the previous
     bracket finds the same minimal k the cold upward scan finds, in O(1)
     evaluations when consecutive queries are close.  If the hint is
     cold or wrong we fall back to the upward scan from it, which
     reaches the same fixed point. *)
  let bracket t ~decreasing_at =
    let pow k = Float.of_int (1 lsl k) in
    let k = ref (max 0 t.bracket_hint) in
    if decreasing_at (pow !k) then
      (* Walk down to the minimal decreasing power of two — the one the
         cold upward scan stops at. *)
      while !k > 0 && decreasing_at (pow (!k - 1)) do
        decr k
      done
    else
      (* Upward closure: everything at or below the hint is
         non-decreasing too, so resuming the cold scan here reaches the
         same fixed point (or the same 2^30 >= 1e9 cap). *)
      while (not (decreasing_at (pow !k))) && pow !k < 1e9 do
        incr k
      done;
    t.bracket_hint <- !k;
    pow !k

  let rate_function t c =
    assert (not t.loading);
    t.queries <- t.queries + 1;
    if c <= t.mean then 0.
    else if c > t.top then infinity
    else begin
      let objective theta = (theta *. c) -. log_mgf t ~theta in
      let decreasing_at x = objective x < objective (0.99 *. x) in
      let hi = bracket t ~decreasing_at in
      let theta_star = Numeric.golden_max ~f:objective 0. hi in
      Float.max 0. (objective theta_star)
    end

  let overflow_estimate t ~n ~capacity_per_call =
    assert (n > 0);
    let i = rate_function t capacity_per_call in
    if Float.equal i infinity then 0. else exp (-.float_of_int n *. i)

  let capacity_for_target ?(tol = 1e-6) t ~n ~target =
    assert (target > 0. && target < 1.);
    let lo = t.mean and hi = t.top in
    if overflow_estimate t ~n ~capacity_per_call:lo <= target then lo
    else
      Numeric.find_min_such_that ~tol
        ~pred:(fun c -> overflow_estimate t ~n ~capacity_per_call:c <= target)
        lo hi

  (* Warm-started admission limit.  The [fits] predicate is evaluated by
     exactly the same code as the cold binary search, and it is monotone
     in n (more calls sharing the same capacity overflow more often), so
     galloping out from the previous answer and bisecting the resulting
     bracket lands on the same boundary the cold search finds — only the
     *set* of probed n differs, typically 2-3 probes when the system
     drifts by a call or two between decisions. *)
  let max_calls t ~capacity ~target =
    assert (capacity >= 0.);
    assert (not t.loading);
    if
      t.memo_stamp = t.stamp
      && Float.equal t.memo_capacity capacity
      && Float.equal t.memo_target target
    then begin
      t.memo_hits <- t.memo_hits + 1;
      t.memo_answer
    end
    else if t.mean <= 0. then max_int
    else begin
      let fits n =
        t.fits_evals <- t.fits_evals + 1;
        n > 0
        && overflow_estimate t ~n
             ~capacity_per_call:(capacity /. float_of_int n)
           <= target
      in
      let upper = int_of_float (capacity /. t.mean) + 1 in
      let answer =
        if not (fits 1) then 0
        else if fits upper then upper
        else begin
          (* Bracket [lo, hi] with fits lo and not (fits hi), galloping
             out from the previous answer. *)
          let h = max 1 (min (upper - 1) t.calls_hint) in
          let lo = ref 1 and hi = ref upper in
          if fits h then begin
            lo := h;
            let step = ref 1 in
            let probe = ref (min upper (h + 1)) in
            while !probe < upper && fits !probe do
              lo := !probe;
              step := 2 * !step;
              probe := min upper (h + !step)
            done;
            if !probe < upper then hi := !probe
          end
          else begin
            hi := h;
            let step = ref 1 in
            let probe = ref (max 1 (h - 1)) in
            while !probe > 1 && not (fits !probe) do
              hi := !probe;
              step := 2 * !step;
              probe := max 1 (h - !step)
            done;
            if !probe > 1 then lo := !probe
          end;
          while !hi - !lo > 1 do
            let mid = (!lo + !hi) / 2 in
            if fits mid then lo := mid else hi := mid
          done;
          !lo
        end
      in
      if answer > 0 && answer < max_int then t.calls_hint <- answer;
      t.memo_stamp <- t.stamp;
      t.memo_capacity <- capacity;
      t.memo_target <- target;
      t.memo_answer <- answer;
      answer
    end

  type stats = {
    mgf_evals : int;
    fits_evals : int;
    queries : int;
    memo_hits : int;
  }

  let stats (t : t) =
    {
      mgf_evals = t.mgf_evals;
      fits_evals = t.fits_evals;
      queries = t.queries;
      memo_hits = t.memo_hits;
    }
end
