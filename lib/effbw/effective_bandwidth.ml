module Matrix = Rcbr_util.Matrix
module Numeric = Rcbr_util.Numeric
module Modulated = Rcbr_markov.Modulated
module Multiscale = Rcbr_markov.Multiscale
module Chain = Rcbr_markov.Chain

let log_mgf source ~theta =
  assert (Float.is_finite theta);
  if Float.equal theta 0. then 0.
  else begin
    let rates = Modulated.rates source in
    let p = Chain.matrix (Modulated.chain source) in
    (* Scale rates so the exponentials stay in range: Lambda_r(theta) =
       Lambda_{r-a}(theta) + theta*a for any shift a. *)
    let shift = Array.fold_left ( +. ) 0. rates /. float_of_int (Array.length rates) in
    let d = Array.map (fun r -> exp (theta *. (r -. shift))) rates in
    let m = Matrix.scale_rows p d in
    log (Matrix.perron_root m) +. (theta *. shift)
  end

let effective_bandwidth source ~theta =
  assert (theta > 0.);
  log_mgf source ~theta /. theta

let equivalent_bandwidth source ~buffer ~target_loss =
  assert (buffer > 0.);
  assert (target_loss > 0. && target_loss < 1.);
  let theta = -.log target_loss /. buffer in
  effective_bandwidth source ~theta

let subchain_equivalent_bandwidths ms ~buffer ~target_loss =
  Array.init (Multiscale.n_subchains ms) (fun k ->
      let sc = Multiscale.subchain ms k in
      let sub = Modulated.create sc.Multiscale.chain ~rates:sc.Multiscale.rates in
      equivalent_bandwidth sub ~buffer ~target_loss)

let multiscale_equivalent_bandwidth ms ~buffer ~target_loss =
  Array.fold_left Float.max 0.
    (subchain_equivalent_bandwidths ms ~buffer ~target_loss)

let decay_rate source ~rate =
  let mean = Modulated.mean_rate source in
  let peak = Modulated.peak_rate source in
  if rate >= peak then infinity
  else if rate <= mean then 0.
  else begin
    (* effective_bandwidth is nondecreasing in theta; bracket then
       bisect on EB(theta) - rate. *)
    let f theta = effective_bandwidth source ~theta -. rate in
    let hi = ref 1. in
    while f !hi < 0. && !hi < 1e12 do
      hi := !hi *. 2.
    done;
    Numeric.bisect ~f 1e-12 !hi
  end
