module Chernoff = Rcbr_effbw.Chernoff
module Histogram = Rcbr_util.Histogram
module Service_model = Rcbr_policy.Service_model

(* The admission fast path (DESIGN.md §7).

   The measurement-based schemes describe "a typical call" by a weighted
   bandwidth-level distribution; the paper's observation that the
   aggregate is the running sum of per-call histograms makes that state
   incrementally maintainable.  Rates are interned into a dense level
   table (exact float match, as the seed's hashtable keys were), and the
   controller maintains, per level index

     hist       — finalized history seconds of all calls in the system
     cur_count  — number of calls currently reserving this level
     since_sum  — sum of those calls' segment start times

   so that the time-weighted aggregate at time [now] is, per level,

     hist + cur_count * now - since_sum

   i.e. every arrival / renegotiation / departure costs O(1) histogram
   updates and a decision materializes the marginal in O(levels) with no
   allocation, instead of rebuilding a per-call weight list in
   O(calls x levels).  Decisions then go through a warm-started
   [Chernoff.Solver] owned by the controller.

   The seed's from-scratch path is kept as [Legacy] (and as the [Check]
   cross-check): rebuild the [(rate, weight)] list from the per-call
   records and run the cold [Chernoff.max_calls].  Per-call finalized
   weights are bit-identical between the two paths (same additions in
   the same order); the aggregate differs from a rebuild only by
   float-summation order, which the deviation probe below bounds. *)

type mode = Fast | Legacy | Check

type call_state = {
  mutable level : int;
  mutable rate : float;
  mutable since : float;
  history : Histogram.t;  (* finalized seconds per level, this call *)
  mutable segments : int;  (* finalized history segments (weight > 0) *)
}

type kind =
  | Perfect of { max_calls : int }
  | Memoryless of { capacity : float; target : float }
  | Memory of { capacity : float; target : float }
  | Always

type stats = {
  decisions : int;
  admits : int;
  decision_hash : int;
  legacy_evals : int;
  mismatches : int;
  batch_hits : int;
  solver : Chernoff.Solver.stats;
}

type t = {
  name : string;
  kind : kind;
  mutable mode : mode;
  mutable service : Service_model.t;
      (* what [decide] does when the Chernoff gate admits but the
         demanded rate does not fit (DESIGN.md §15) *)
  calls : (int, call_state) Hashtbl.t;
  (* Level table: rate values interned in first-seen order. *)
  mutable values : float array;
  mutable n_levels : int;
  level_of : (float, int) Hashtbl.t;
  (* Incremental aggregates (level-indexed). *)
  hist : Histogram.t;
  cur_count : Histogram.t;
  since_sum : Histogram.t;
  mutable hist_segments : int;  (* total finalized segments in [hist] *)
  (* Lower bound on the minimum [since] over active calls (infinity
     when none was ever admitted; never raised by departures, so it can
     only be stale *downward* — see [all_fresh]). *)
  mutable since_floor : float;
  solver : Chernoff.Solver.t;
  (* Batched decisions: while [batching] and nothing has mutated the
     call population since the last fast-path load at the same [now],
     the committed solver distribution is still exact, so a decision is
     the O(1) integer compare against the memoized [max_calls]. *)
  mutable batching : bool;
  mutable cache_valid : bool;
  mutable cache_now : float;
  mutable cache_empty : bool;  (* the load saw an empty distribution *)
  (* Instrumentation. *)
  mutable decisions : int;
  mutable admits : int;
  mutable decision_hash : int;
  mutable legacy_evals : int;
  mutable mismatches : int;
  mutable batch_hits : int;
}

let name t = t.name
let n_in_system t = Hashtbl.length t.calls
let mode t = t.mode
let set_mode t mode = t.mode <- mode
let service t = t.service

let set_service t service =
  Service_model.validate service;
  t.service <- service
let batched t = t.batching

let set_batched t on =
  t.batching <- on;
  if not on then t.cache_valid <- false

let stats t =
  {
    decisions = t.decisions;
    admits = t.admits;
    decision_hash = t.decision_hash;
    legacy_evals = t.legacy_evals;
    mismatches = t.mismatches;
    batch_hits = t.batch_hits;
    solver = Chernoff.Solver.stats t.solver;
  }

let level_of t rate =
  match Hashtbl.find_opt t.level_of rate with
  | Some l -> l
  | None ->
      let l = t.n_levels in
      if l >= Array.length t.values then begin
        let values = Array.make (2 * Array.length t.values) 0. in
        Array.blit t.values 0 values 0 l;
        t.values <- values
      end;
      t.values.(l) <- rate;
      Hashtbl.add t.level_of rate l;
      t.n_levels <- l + 1;
      l

(* --- state maintenance ---------------------------------------------- *)

let accumulate t state ~now =
  let elapsed = now -. state.since in
  if elapsed > 0. then begin
    Histogram.add state.history state.level elapsed;
    Histogram.add t.hist state.level elapsed;
    state.segments <- state.segments + 1;
    t.hist_segments <- t.hist_segments + 1
  end;
  state.since <- now

let on_admit t ~now ~call ~rate =
  assert (not (Hashtbl.mem t.calls call));
  t.cache_valid <- false;
  let level = level_of t rate in
  let state =
    {
      level;
      rate;
      since = now;
      history = Histogram.create ~levels:(max 1 t.n_levels);
      segments = 0;
    }
  in
  Hashtbl.replace t.calls call state;
  if now < t.since_floor then t.since_floor <- now;
  Histogram.add t.cur_count level 1.;
  Histogram.add t.since_sum level now

let on_renegotiate t ~now ~call ~rate =
  t.cache_valid <- false;
  match Hashtbl.find_opt t.calls call with
  | None -> ()
  | Some st ->
      (* Close the ongoing segment at the old level... *)
      Histogram.sub t.cur_count st.level 1.;
      Histogram.sub t.since_sum st.level st.since;
      accumulate t st ~now;
      (* ...and open one at the new. *)
      let level = level_of t rate in
      st.level <- level;
      st.rate <- rate;
      Histogram.add t.cur_count level 1.;
      Histogram.add t.since_sum level now

let on_depart t ~now ~call =
  ignore now;
  t.cache_valid <- false;
  match Hashtbl.find_opt t.calls call with
  | None -> ()
  | Some st ->
      Hashtbl.remove t.calls call;
      (* The departing call takes its history with it, exactly as the
         seed's per-call table did: the ongoing tail is dropped, not
         finalized. *)
      Histogram.sub t.cur_count st.level 1.;
      Histogram.sub t.since_sum st.level st.since;
      Histogram.iter_support st.history (fun l w -> Histogram.sub t.hist l w);
      t.hist_segments <- t.hist_segments - st.segments

(* --- fast decision path --------------------------------------------- *)

let load_instantaneous t =
  Chernoff.Solver.reset t.solver;
  Histogram.iter_support t.cur_count (fun l w ->
      Chernoff.Solver.push t.solver ~level:t.values.(l) ~weight:w)

let load_history t ~now =
  Chernoff.Solver.reset t.solver;
  for l = 0 to t.n_levels - 1 do
    let ongoing =
      (Histogram.weight t.cur_count l *. now) -. Histogram.weight t.since_sum l
    in
    let w = Histogram.weight t.hist l +. ongoing in
    Chernoff.Solver.push t.solver ~level:t.values.(l) ~weight:w
  done

(* The seed fell back to instantaneous rates when every history weight
   was <= 0, which — since finalized segments always carry positive
   seconds — happens exactly when no segment was ever finalized and no
   call has been in the system for positive time.  Testing it this way
   keeps the branch exact (no epsilon against float cancellation in the
   aggregate); the O(calls) scan only runs while the controller has no
   finalized history at all. *)
let all_fresh t ~now =
  t.hist_segments = 0
  && ((* [since_floor] is a lower bound on every active [since]
         (departures never raise it), so [now <= since_floor] proves
         every call fresh in O(1) — the common case during a batched
         ramp tick, where the fold below would be O(calls) per
         decision.  When the bound is inconclusive the exact fold
         decides, as the seed did. *)
      now <= t.since_floor
     (* lint: allow D002, T001 — conjunction over all calls, so the
        result is invariant under bucket order and taints nothing *)
     || Hashtbl.fold (fun _ st acc -> acc && now -. st.since <= 0.) t.calls true)

let solver_admit t ~capacity ~target ~n =
  if Chernoff.Solver.n_levels t.solver = 0 then true
  else begin
    Chernoff.Solver.commit_weighted t.solver;
    n + 1 <= Chernoff.Solver.max_calls t.solver ~capacity ~target
  end

(* Batched fast path.  A cache hit means no [on_admit]/[on_renegotiate]/
   [on_depart] ran since the last load and [now] is bit-equal, so
   reloading would push the identical floats and re-derive the identical
   [max_calls] — the decision below is therefore *exactly* the
   per-decision one (property-tested in test/test_admission.ml), served
   by the solver's memo without redoing the load or the search. *)
let fast_admit t ~now ~capacity ~target =
  let n = n_in_system t in
  if t.batching && t.cache_valid && Float.equal t.cache_now now then begin
    t.batch_hits <- t.batch_hits + 1;
    t.cache_empty || n + 1 <= Chernoff.Solver.max_calls t.solver ~capacity ~target
  end
  else begin
    (match t.kind with
    | Memory _ when not (all_fresh t ~now) -> load_history t ~now
    | _ -> load_instantaneous t);
    t.cache_now <- now;
    t.cache_valid <- t.batching;
    t.cache_empty <- Chernoff.Solver.n_levels t.solver = 0;
    solver_admit t ~capacity ~target ~n
  end

(* --- legacy (seed) decision path ------------------------------------ *)

let marginal_of_weights weights =
  (* [(rate, weight)] list with positive total -> normalized marginal. *)
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. weights in
  assert (total > 0.);
  let arr = Array.of_list (List.map (fun (r, w) -> (w /. total, r)) weights) in
  Array.sort (fun (_, a) (_, b) -> Float.compare a b) arr;
  arr

let instantaneous_weights t =
  (* lint: allow D002, T001 — seed-exact bucket order; sorting would
     drift the Legacy baseline's float-summation order.  Reproducible
     for a fixed stdlib: Hashtbl without ~random is deterministic in
     the insertion sequence, which the session store fixes *)
  Hashtbl.fold (fun _ st acc -> (st.rate, 1.) :: acc) t.calls []

let history_weights t ~now =
  (* lint: allow D002, T001 — seed-exact bucket order, as above *)
  Hashtbl.fold
    (fun _ st acc ->
      let acc = ref acc in
      Histogram.iter_support st.history (fun l secs ->
          acc := (t.values.(l), secs) :: !acc);
      let ongoing = now -. st.since in
      if ongoing > 0. then (st.rate, ongoing) :: !acc else !acc)
    t.calls []

let chernoff_admit ~capacity ~target ~n weights =
  match weights with
  | [] -> true (* no information: the certainty-equivalent scheme admits *)
  | _ ->
      let m = marginal_of_weights weights in
      n + 1 <= Chernoff.max_calls m ~capacity ~target

let legacy_admit t ~now ~capacity ~target =
  t.legacy_evals <- t.legacy_evals + 1;
  let n = n_in_system t in
  match t.kind with
  | Always | Perfect _ -> assert false
  | Memoryless _ -> chernoff_admit ~capacity ~target ~n (instantaneous_weights t)
  | Memory _ ->
      let weights = history_weights t ~now in
      let weights =
        (* All-fresh calls have no elapsed time yet; fall back to their
           instantaneous rates. *)
        if List.for_all (fun (_, w) -> w <= 0.) weights then
          instantaneous_weights t
        else weights
      in
      chernoff_admit ~capacity ~target ~n weights

(* --- decisions ------------------------------------------------------ *)

let record t verdict =
  t.decisions <- t.decisions + 1;
  if verdict then t.admits <- t.admits + 1;
  (* Order-sensitive running hash of the admit/deny sequence, for
     cheap cross-run and cross-[-j] identity checks. *)
  t.decision_hash <-
    ((t.decision_hash * 1_000_003) + (if verdict then 1 else 2)) land max_int;
  verdict

let admit t ~now =
  match t.kind with
  | Always -> record t true
  | Perfect { max_calls } -> record t (n_in_system t + 1 <= max_calls)
  | Memoryless { capacity; target } | Memory { capacity; target } -> (
      match t.mode with
      | Fast -> record t (fast_admit t ~now ~capacity ~target)
      | Legacy -> record t (legacy_admit t ~now ~capacity ~target)
      | Check ->
          let fast = fast_admit t ~now ~capacity ~target in
          let legacy = legacy_admit t ~now ~capacity ~target in
          if fast <> legacy then t.mismatches <- t.mismatches + 1;
          record t fast)

(* --- service-model admission (DESIGN.md §15) ------------------------ *)

type admission = Blocked | Admit of { granted : float; tier : int; downgraded : bool }

(* Admission under the controller's service model.  The statistical
   Chernoff gate runs first under every model — exactly one [record],
   so under [Renegotiate] the decision sequence (and hence
   [decision_hash]) is the seed's [admit] verbatim.  Under [Downgrade]
   an admitted call whose demanded rate does not [fits] walks the
   ladder; a call that fits at no tier is Blocked (new calls hold no
   floor right — only established calls settle, see [Session.decide])
   and the capacity rejection is recorded as an extra deny so the hash
   covers it.  [Mts_profile] polices established traffic only, so
   arrivals behave as [Renegotiate]. *)
let decide t ~now ~demanded ~fits =
  match t.service with
  | Service_model.Renegotiate | Service_model.Mts_profile _ ->
      if admit t ~now then Admit { granted = demanded; tier = -1; downgraded = false }
      else Blocked
  | Service_model.Downgrade { tiers } ->
      if not (admit t ~now) then Blocked
      else begin
        match Service_model.decide_tiers ~tiers ~demanded ~fits with
        | Service_model.Grant ->
            Admit { granted = demanded; tier = -1; downgraded = false }
        | Service_model.Downgrade_to { granted; tier } ->
            Admit { granted; tier; downgraded = true }
        | Service_model.Settle_floor _ ->
            ignore (record t false);
            Blocked
        | Service_model.Police_to _ -> assert false (* decide_tiers never *)
      end

(* --- debug: incremental aggregate vs from-scratch rebuild ----------- *)

let debug_aggregate_deviation t ~now =
  let rebuilt = Array.make (max 1 t.n_levels) 0. in
  (* Iterate calls in sorted-id order so the rebuilt aggregate — a float
     sum — is a pure function of the controller state, not of the
     hashtable's bucket history. *)
  Rcbr_util.Tables.iter_sorted
    (fun _ st ->
      Histogram.iter_support st.history (fun l w ->
          rebuilt.(l) <- rebuilt.(l) +. w);
      let ongoing = now -. st.since in
      if ongoing > 0. then rebuilt.(st.level) <- rebuilt.(st.level) +. ongoing)
    t.calls;
  let dev = ref 0. in
  for l = 0 to t.n_levels - 1 do
    let incremental =
      Histogram.weight t.hist l
      +. (Histogram.weight t.cur_count l *. now)
      -. Histogram.weight t.since_sum l
    in
    let scale = Float.max 1. (Float.max (Float.abs rebuilt.(l)) now) in
    dev := Float.max !dev (Float.abs (incremental -. rebuilt.(l)) /. scale)
  done;
  !dev

(* --- constructors --------------------------------------------------- *)

let make ~name ~kind () =
  {
    name;
    kind;
    mode = Fast;
    service = Service_model.Renegotiate;
    calls = Hashtbl.create 64;
    values = Array.make 16 0.;
    n_levels = 0;
    level_of = Hashtbl.create 32;
    hist = Histogram.create ~levels:16;
    cur_count = Histogram.create ~levels:16;
    since_sum = Histogram.create ~levels:16;
    hist_segments = 0;
    since_floor = infinity;
    solver = Chernoff.Solver.create ();
    batching = false;
    cache_valid = false;
    cache_now = 0.;
    cache_empty = false;
    decisions = 0;
    admits = 0;
    decision_hash = 0;
    legacy_evals = 0;
    mismatches = 0;
    batch_hits = 0;
  }

let perfect ~descriptor ~capacity ~target =
  let max_calls = Descriptor.max_admissible descriptor ~capacity ~target in
  make ~name:"perfect" ~kind:(Perfect { max_calls }) ()

let memoryless ~capacity ~target =
  make ~name:"memoryless" ~kind:(Memoryless { capacity; target }) ()

let memory ~capacity ~target =
  make ~name:"memory" ~kind:(Memory { capacity; target }) ()

let always_admit () = make ~name:"always-admit" ~kind:Always ()
