(** Admission controllers (Section VI).

    A controller is driven by the call-level simulator: it is asked for
    an admit/reject decision on every arrival and informed of every
    admitted call's renegotiations and departure, from which the
    measurement-based schemes build their view of "a typical call".

    All controllers share the same Chernoff admission rule — admit the
    new call iff [n + 1 <= max_calls(estimate, capacity, target)] — and
    differ only in where the bandwidth-level distribution estimate comes
    from:

    - {!perfect}: the true marginal, known a priori;
    - {!memoryless}: the instantaneous rates of the calls currently in
      the system (the certainty-equivalent scheme shown not robust);
    - {!memory}: time-weighted histograms over the {e entire history} of
      every call currently in the system;
    - {!always_admit}: no control, for baselines.

    {1 The admission fast path (DESIGN.md §7)}

    The measurement-based estimates are maintained incrementally: rates
    are interned into a dense level table, and the controller keeps the
    finalized-history histogram plus the count and summed segment start
    time of the calls currently at each level, so that the time-weighted
    aggregate at time [now] is [hist + cur_count*now - since_sum] per
    level.  Arrival, renegotiation and departure each cost O(1)
    histogram updates; a decision materializes the marginal in O(levels)
    without allocation and runs it through a warm-started
    {!Rcbr_effbw.Chernoff.Solver} owned by the controller.

    The seed's from-scratch path — rebuild a per-call [(rate, weight)]
    list and call the cold [Chernoff.max_calls] — is retained behind
    {!mode} for cross-checking and benchmarking. *)

type t

type mode =
  | Fast  (** incremental aggregates + warm-started solver (default) *)
  | Legacy  (** from-scratch rebuild on every decision, as the seed did *)
  | Check
      (** run both, count disagreements in {!stats}, answer with [Fast] *)

val mode : t -> mode
val set_mode : t -> mode -> unit
(** Controllers start in [Fast]; switch before feeding events. *)

val batched : t -> bool

val set_batched : t -> bool -> unit
(** Batched decisions (off by default): while on, the fast path caches
    the solver load keyed on the decision's exact [now] and invalidates
    it on any {!on_admit}/{!on_renegotiate}/{!on_depart}, so repeat
    decisions inside one tick — e.g. an arrival burst being denied
    against an unchanged population — reduce to an O(1) integer
    compare against the solver's memoized [max_calls].  The admit/deny
    sequence is exactly the per-decision one: a cache hit implies a
    reload would push bit-identical weights (property-tested in
    test/test_admission.ml). *)

val name : t -> string

val admit : t -> now:float -> bool
(** Decision for a call arriving at [now], given the controller's
    current knowledge.  Does not mutate admission state (only decision
    counters); the simulator follows up with {!on_admit} only when the
    call is actually placed. *)

(** {1 Service models (DESIGN.md §15)} *)

val service : t -> Rcbr_policy.Service_model.t

val set_service : t -> Rcbr_policy.Service_model.t -> unit
(** Controllers start under [Renegotiate] (the seed behaviour).
    Validates the model. *)

type admission =
  | Blocked
  | Admit of { granted : float; tier : int; downgraded : bool }
      (** [tier] is the granted ladder index, or [-1] for a full grant *)

val decide : t -> now:float -> demanded:float -> fits:(float -> bool) -> admission
(** {!admit} composed with the service model.  The Chernoff gate runs
    first (one {!stats.decision_hash} record — under [Renegotiate] the
    decision sequence is exactly {!admit}'s and [fits] is never
    probed); under [Downgrade] an admitted call that does not fit at
    its demanded rate is granted the highest fitting ladder tier, or
    [Blocked] when no tier fits (arrivals hold no settle-floor right,
    and the capacity rejection is recorded as an extra deny). *)

val on_admit : t -> now:float -> call:int -> rate:float -> unit
val on_renegotiate : t -> now:float -> call:int -> rate:float -> unit
(** The call's reserved rate changed to [rate] at time [now]. *)

val on_depart : t -> now:float -> call:int -> unit

val n_in_system : t -> int

type stats = {
  decisions : int;  (** {!admit} calls *)
  admits : int;  (** of which answered [true] *)
  decision_hash : int;
      (** order-sensitive hash of the admit/deny sequence; equal hashes
          across runs mean identical decision sequences *)
  legacy_evals : int;  (** from-scratch rebuilds ([Legacy]/[Check]) *)
  mismatches : int;  (** [Check]-mode fast/legacy disagreements *)
  batch_hits : int;  (** decisions served from the batched-tick cache *)
  solver : Rcbr_effbw.Chernoff.Solver.stats;
}

val stats : t -> stats

val debug_aggregate_deviation : t -> now:float -> float
(** Maximum relative deviation, over levels, between the incremental
    time-weighted aggregate and a from-scratch rebuild from the per-call
    records at time [now].  Exact bookkeeping would give 0; float
    summation order bounds it near machine epsilon.  O(calls x levels) —
    debugging and property tests only. *)

val perfect : descriptor:Descriptor.t -> capacity:float -> target:float -> t
val memoryless : capacity:float -> target:float -> t
val memory : capacity:float -> target:float -> t
val always_admit : unit -> t
