module Trace = Rcbr_traffic.Trace

type params = {
  b_low : float;
  b_high : float;
  flush_slots : int;
  granularity : float;
  ar_coefficient : float;
  use_flush_term : bool;
}

let default_params =
  {
    b_low = 10_000.;
    b_high = 150_000.;
    flush_slots = 5;
    granularity = 100_000.;
    ar_coefficient = 0.9;
    use_flush_term = true;
  }

type outcome = {
  schedule : Schedule.t;
  max_backlog : float;
  bits_lost : float;
  predictions : float array;
}

let quantize_up delta x =
  if x <= 0. then delta else delta *. Float.ceil (x /. delta)

let run_custom ?(delay_slots = 0) ?buffer p ~predictor trace =
  assert (p.b_low >= 0. && p.b_high > p.b_low);
  assert (p.flush_slots > 0 && p.granularity > 0.);
  assert (delay_slots >= 0);
  (match buffer with Some b -> assert (b > 0.) | None -> ());
  let n = Trace.length trace in
  let tau = Trace.slot_duration trace in
  let flush_seconds = float_of_int p.flush_slots *. tau in
  let predictions = Array.make n 0. in
  let backlog = ref 0. and max_backlog = ref 0. in
  let bits_lost = ref 0. in
  let pred = predictor ~initial:(Trace.frame trace 0 /. tau) in
  let segments = ref [] in
  (* [current] is the rate the network serves; [requested] the latest
     rate asked of it; with a signaling delay they differ while a
     request is in flight. *)
  let current = ref (quantize_up p.granularity (pred.Predictor.forecast ())) in
  let requested = ref !current in
  let pending = ref [] (* (effective_slot, rate), at most one in flight *) in
  segments := [ { Schedule.start_slot = 0; rate = !current } ];
  for t = 0 to n - 1 do
    (* A granted renegotiation comes into force. *)
    (match !pending with
    | (at, rate) :: rest when at <= t ->
        current := rate;
        pending := rest;
        segments := { Schedule.start_slot = t; rate } :: !segments
    | _ -> ());
    (* Arrivals of slot t, then service at the current rate.  With a
       finite buffer the excess spills and is accounted as lost, exactly
       as in {!Rcbr_signal.Niu}'s end-system buffer. *)
    let x = Trace.frame trace t /. tau in
    let net = !backlog +. Trace.frame trace t -. (!current *. tau) in
    (match buffer with
    | None -> backlog := Float.max 0. net
    | Some cap ->
        backlog := Float.min cap (Float.max 0. net);
        bits_lost := !bits_lost +. Float.max 0. (net -. cap));
    if !backlog > !max_backlog then max_backlog := !backlog;
    pred.Predictor.observe x;
    (* The flush term sits outside the filter so that draining the
       backlog does not inflate future estimates. *)
    let flush = if p.use_flush_term then !backlog /. flush_seconds else 0. in
    let prediction = pred.Predictor.forecast () +. flush in
    predictions.(t) <- prediction;
    (* Formula (8): renegotiate only when the buffer urges the move. *)
    if t + 1 < n then begin
      let want = quantize_up p.granularity prediction in
      let want_up = !backlog > p.b_high && want > !requested in
      let want_down = !backlog < p.b_low && want < !requested in
      if (want_up || want_down) && !pending = [] then begin
        requested := want;
        if delay_slots = 0 then begin
          current := want;
          segments := { Schedule.start_slot = t + 1; rate = want } :: !segments
        end
        else pending := [ (t + 1 + delay_slots, want) ]
      end
    end
  done;
  let schedule =
    Schedule.create ~fps:(Trace.fps trace) ~n_slots:n (List.rev !segments)
  in
  { schedule; max_backlog = !max_backlog; bits_lost = !bits_lost; predictions }

type receding_stats = {
  solves : int;
  infeasible_windows : int;
  expanded : int;
  dropped_by_beam : int;
  prior_hits : int;
}

let run_receding ?(delay_slots = 0) ?buffer ?(resolve_every_slot = false)
    ?(beam_width = 16) ?(prior = Beam.Uniform) ?prior_weight p ~opt ~horizon
    ~predictor trace =
  assert (p.b_low >= 0. && p.b_high > p.b_low);
  assert (horizon >= 1);
  assert (delay_slots >= 0);
  (match buffer with Some b -> assert (b > 0.) | None -> ());
  let n = Trace.length trace in
  let tau = Trace.slot_duration trace in
  let fps = Trace.fps trace in
  let grid = opt.Optimal.grid in
  let prior_weight =
    match prior_weight with
    | Some w -> w
    | None -> Beam.default_prior_weight opt trace
  in
  (* The caller's bound is the planning headroom (e.g. half the physical
     buffer): windows are solved against it so forecast error has room
     to land, and it is raised to the live backlog when the buffer is
     already past it — the window must remain feasible from the state
     the controller is actually in. *)
  let plan_bound =
    match opt.Optimal.constraint_ with
    | Optimal.Buffer_bound b -> b
    | Optimal.Delay_bound _ ->
        invalid_arg "Online.run_receding: requires a Buffer_bound"
  in
  (* Compile the prior once; the controller re-solves up to once per
     slot against it. *)
  let beam = Beam.compile ~grid ~beam_width ~prior_weight prior in
  let predictions = Array.make n 0. in
  let backlog = ref 0. and max_backlog = ref 0. in
  let bits_lost = ref 0. in
  let pred = predictor ~initial:(Trace.frame trace 0 /. tau) in
  let segments = ref [] in
  let current = ref (Rate_grid.quantize_up grid (pred.Predictor.forecast ())) in
  let requested = ref !current in
  let pending = ref [] (* (effective_slot, rate), at most one in flight *) in
  let solves = ref 0 and infeasible_windows = ref 0 in
  let expanded = ref 0 and dropped = ref 0 and hits = ref 0 in
  let window = Array.make horizon 0. in
  segments := [ { Schedule.start_slot = 0; rate = !current } ];
  for t = 0 to n - 1 do
    (match !pending with
    | (at, rate) :: rest when at <= t ->
        current := rate;
        pending := rest;
        segments := { Schedule.start_slot = t; rate } :: !segments
    | _ -> ());
    let x = Trace.frame trace t /. tau in
    let net = !backlog +. Trace.frame trace t -. (!current *. tau) in
    (match buffer with
    | None -> backlog := Float.max 0. net
    | Some cap ->
        backlog := Float.min cap (Float.max 0. net);
        bits_lost := !bits_lost +. Float.max 0. (net -. cap));
    if !backlog > !max_backlog then max_backlog := !backlog;
    pred.Predictor.observe x;
    let forecast = pred.Predictor.forecast () in
    predictions.(t) <- forecast;
    (* Re-solve the lookahead window — every slot, or only when the
       buffer crosses a threshold (formula (8)'s trigger with the
       trellis replacing the quantized-forecast rule).  Never while a
       request is in flight: at most one outstanding renegotiation. *)
    if
      t + 1 < n
      && !pending = []
      && (resolve_every_slot || !backlog > p.b_high || !backlog < p.b_low)
    then begin
      (* The lookahead workload: [horizon] slots at the forecast rate,
         with the live backlog folded into the first slot so the solver
         must plan its drain. *)
      let bits = forecast *. tau in
      Array.fill window 0 horizon bits;
      window.(0) <- window.(0) +. !backlog;
      let wtrace = Trace.create ~fps window in
      let wopt =
        {
          opt with
          Optimal.constraint_ =
            Optimal.Buffer_bound (Float.max plan_bound !backlog);
        }
      in
      let start_level = Rate_grid.index_up grid !current in
      incr solves;
      let want =
        match Optimal.solve_raw ~beam ~start_level wopt wtrace with
        | schedule, base, c ->
            expanded := !expanded + base.Optimal.expanded;
            dropped := !dropped + c.Optimal.dropped_by_beam;
            hits := !hits + c.Optimal.prior_hits;
            (Schedule.segments schedule).(0).Schedule.rate
        | exception Optimal.Infeasible _ ->
            (* Even the top rate cannot hold the window's bound (the
               burst outruns the grid): fall back to flat out. *)
            incr infeasible_windows;
            Rate_grid.top grid
      in
      (* Formula (8)'s direction rule, with the trellis replacing the
         quantized forecast: act only when the buffer urges the move.
         [resolve_every_slot] is pure model-predictive mode — trust the
         solver outright (it already charges K for switching via
         [start_level]), at the price of chasing forecast noise. *)
      let act =
        if resolve_every_slot then not (Float.equal want !requested)
        else
          (!backlog > p.b_high && want > !requested)
          || (!backlog < p.b_low && want < !requested)
      in
      if act then begin
        requested := want;
        if delay_slots = 0 then begin
          current := want;
          segments := { Schedule.start_slot = t + 1; rate = want } :: !segments
        end
        else pending := [ (t + 1 + delay_slots, want) ]
      end
    end
  done;
  let schedule =
    Schedule.create ~fps:(Trace.fps trace) ~n_slots:n (List.rev !segments)
  in
  ( {
      schedule;
      max_backlog = !max_backlog;
      bits_lost = !bits_lost;
      predictions;
    },
    {
      solves = !solves;
      infeasible_windows = !infeasible_windows;
      expanded = !expanded;
      dropped_by_beam = !dropped;
      prior_hits = !hits;
    } )

let run p trace =
  assert (p.ar_coefficient >= 0. && p.ar_coefficient < 1.);
  let predictor ~initial = Predictor.ar1 ~eta:p.ar_coefficient ~initial in
  run_custom p ~predictor trace

let run_delayed p ~delay_slots trace =
  assert (p.ar_coefficient >= 0. && p.ar_coefficient < 1.);
  let predictor ~initial = Predictor.ar1 ~eta:p.ar_coefficient ~initial in
  run_custom ~delay_slots p ~predictor trace

let schedule p trace = (run p trace).schedule
