(** Beam-searched probabilistic trellis (DESIGN.md §13).

    The exact solver ({!Optimal}) expands the full dominance frontier;
    on fine rate grids (M ≳ 100 levels) the frontier grows into the tens
    of thousands of nodes per slot and the solve falls out of the
    interactive regime.  This module trades bounded optimality for
    bounded work: keep only the [beam_width] best candidate states per
    stage, ranked by [path_cost - prior_weight * log_prior], where the
    prior is a per-level transition log-probability table learned from
    the rate-level occupancy and transition counts of a training trace
    (or a {!Rcbr_markov.Chain}) — the soft-decision pruned-trellis
    technique of codec2's [trellis.m].

    Feasibility is never approximated: the globally lowest-buffer node
    survives every selection, and buffer evolution is monotone in the
    buffer, so {!Optimal.Infeasible} is raised iff the exact solver
    would raise it.

    With [beam_width = max_int] and a {!Uniform} prior the beam solver
    is bit-identical to {!Optimal.solve_with_stats} (enforced by a
    qcheck property): the selection never triggers and the uniform
    prior gives every stage-t node the same cumulative log prior. *)

module Histogram := Rcbr_util.Histogram

type prior =
  | Uniform  (** every transition equally likely — the degenerate
                 fallback; ranking reduces to plain path weight *)
  | Table of {
      levels : int;  (** grid size the prior was trained against *)
      init : Histogram.t;  (** rate-level occupancy counts *)
      trans : Histogram.t array;
          (** [trans.(a)]: counts of a->b level transitions *)
    }

val of_trace : grid:Rate_grid.t -> Rcbr_traffic.Trace.t -> prior
(** Learn occupancy and transition counts from a training trace: each
    slot's level is the smallest grid rate covering its arrival rate
    ({!Rate_grid.index_up}). *)

val of_chain :
  grid:Rate_grid.t -> rates:float array -> Rcbr_markov.Chain.t -> prior
(** Learn the prior from a Markov traffic model instead of a trace:
    state [s] (rate [rates.(s)], in b/s) maps to its covering grid
    level, and the s->s' transition adds stationary-weighted mass
    [pi(s) * P(s, s')].  Raises [Invalid_argument] if [rates] and the
    chain disagree on the state count. *)

val compile :
  grid:Rate_grid.t ->
  beam_width:int ->
  prior_weight:float ->
  prior ->
  Optimal.beam_opts
(** Materialize a prior into the log tables {!Optimal.solve_raw}
    consumes.  Empty bins are floored at log 1e-9 (steep but finite, so
    the beam can follow traffic off the prior's support — see
    {!Rcbr_util.Histogram.log_mass}).  Raises [Invalid_argument] if a
    {!Table} prior was trained on a different grid size, or if
    [beam_width < 1].  Compile once and reuse across solves: the
    receding-horizon controller calls the solver thousands of times
    against one compiled prior. *)

val default_prior_weight :
  Optimal.params -> Rcbr_traffic.Trace.t -> float
(** One nat of log-prior ≙ one mean slot of allocated bandwidth:
    [bandwidth_cost * mean_rate * slot_duration]. *)

type stats = {
  base : Optimal.stats;
  kept : int;  (** nodes surviving beam selection, summed over stages *)
  dropped_by_beam : int;
  prior_hits : int;  (** expansions along prior-observed transitions *)
}

val solve_with_stats :
  ?lemma_pruning:bool ->
  ?buffer_quantum:float ->
  ?frontier_cap:int ->
  ?prior_weight:float ->
  ?start_level:int ->
  beam_width:int ->
  prior:prior ->
  Optimal.params ->
  Rcbr_traffic.Trace.t ->
  Schedule.t * stats
(** Beam-searched {!Optimal.solve_with_stats}.  [prior_weight] defaults
    to {!default_prior_weight}; [start_level] marks the rate already in
    force (every other initial level pays one renegotiation) for
    receding-horizon use.  May raise {!Optimal.Infeasible} — exactly
    when the exact solver would. *)

val solve :
  ?lemma_pruning:bool ->
  ?buffer_quantum:float ->
  ?frontier_cap:int ->
  ?prior_weight:float ->
  ?start_level:int ->
  beam_width:int ->
  prior:prior ->
  Optimal.params ->
  Rcbr_traffic.Trace.t ->
  Schedule.t
(** {!solve_with_stats} without the diagnostics. *)

val sweep :
  ?lemma_pruning:bool ->
  ?buffer_quantum:float ->
  ?frontier_cap:int ->
  ?prior_weight:float ->
  ?start_level:int ->
  widths:int list ->
  prior:prior ->
  Optimal.params ->
  Rcbr_traffic.Trace.t ->
  (int * Schedule.t * stats) list
(** Solve once per width (strictly ascending, all >= 1) against one
    compiled prior, with {e anytime} semantics: the schedule reported at
    width [w] is the cheapest found at any width up to [w], so its cost
    is non-increasing in the width {e by construction} (enforced by a
    qcheck property).  The raw per-width schedules are not monotone:
    beam selection is score-ranked per stage, so the kept sets of two
    widths are not nested and a wider beam can genuinely lose a path a
    narrower one kept — measured in ~60% of random instances (DESIGN.md
    §13).  The [stats] are the raw run's at that width. *)
