(** Causal renegotiation heuristic for interactive sources
    (Section IV-B).

    The rate predictor is an AR(1) filter on the observed arrival rate
    plus a flush term that would empty the current backlog within the
    time constant [T] (formula (6)):

    {v chat(t) = eta * chat(t-1) + (1 - eta) * x(t)
   rhat(t) = chat(t) + B(t)/T v}

    The flush term sits outside the filter so that a draining backlog
    does not inflate future estimates.  The prediction is rounded up to a multiple of the bandwidth
    granularity Delta (formula (7)), and a renegotiation is issued only
    when the buffer crosses a threshold in the direction of the change
    (formula (8)): above [b_high] and the quantized prediction exceeds
    the current rate, or below [b_low] and it is lower. *)

type params = {
  b_low : float;  (** lower buffer threshold, bits (paper: 10 kb) *)
  b_high : float;  (** upper buffer threshold, bits (paper: 150 kb) *)
  flush_slots : int;  (** T of formula (6), in slots (paper: 5 frames) *)
  granularity : float;  (** Delta, b/s (paper sweeps 25..400 kb/s) *)
  ar_coefficient : float;  (** eta of the AR(1) filter *)
  use_flush_term : bool;  (** ablation switch for the B(t)/T term *)
}

val default_params : params
(** Paper values: b_low 10 kb, b_high 150 kb, T = 5 frames,
    Delta = 100 kb/s, eta = 0.9, flush term on. *)

type outcome = {
  schedule : Schedule.t;
  max_backlog : float;  (** peak end-system buffer occupancy, bits *)
  bits_lost : float;
      (** overflow loss; always 0 without a [buffer] cap *)
  predictions : float array;  (** chat(t) per slot, for diagnostics *)
}

val run : params -> Rcbr_traffic.Trace.t -> outcome
(** Simulate the heuristic over a trace.  The initial rate is the
    quantized first prediction and does not count as a renegotiation. *)

val schedule : params -> Rcbr_traffic.Trace.t -> Schedule.t
(** [run] without the diagnostics. *)

val run_custom :
  ?delay_slots:int ->
  ?buffer:float ->
  params ->
  predictor:(initial:float -> Predictor.t) ->
  Rcbr_traffic.Trace.t ->
  outcome
(** Same machinery — flush term, quantization, buffer-threshold gating —
    with a caller-supplied rate predictor (see {!Predictor}); [initial]
    is the first slot's rate.  [run] is
    [run_custom ~predictor:(Predictor.ar1 ~eta:ar_coefficient)].

    [buffer] (default: unbounded) caps the backlog at the end-system
    buffer size; the spill is accounted in [bits_lost].  This matches
    {!Rcbr_signal.Niu}'s buffer semantics, so an uncontended NIU run and
    [run_custom ?buffer] agree bit for bit on the same trace.

    [delay_slots] (default 0) models the signaling round-trip of
    Section III-C: a granted renegotiation only takes effect that many
    slots after it is issued, so the buffer keeps filling at the old
    rate meanwhile — the unresolved question the paper flags ("we do
    not yet have ... simulation results studying the effect of
    renegotiation delay").  At most one request is outstanding at a
    time; the threshold rule compares against the {e requested} rate so
    the source does not flood the signaling channel. *)

val run_delayed : params -> delay_slots:int -> Rcbr_traffic.Trace.t -> outcome
(** [run] with a signaling delay. *)

(** {2 Receding-horizon control (DESIGN.md §13)}

    Instead of quantizing the forecast (formula (7)), re-solve the
    renegotiation trellis over a short lookahead window each time the
    buffer urges a move, and request the window-optimal first rate —
    near-optimal schedules at interactive rates when the beam keeps the
    per-window work bounded on fine grids. *)

type receding_stats = {
  solves : int;  (** lookahead windows solved *)
  infeasible_windows : int;
      (** windows whose backlog even the top rate could not drain within
          the constraint; the controller fell back to the top rate *)
  expanded : int;  (** trellis nodes expanded, summed over windows *)
  dropped_by_beam : int;
  prior_hits : int;
}

val run_receding :
  ?delay_slots:int ->
  ?buffer:float ->
  ?resolve_every_slot:bool ->
  ?beam_width:int ->
  ?prior:Beam.prior ->
  ?prior_weight:float ->
  params ->
  opt:Optimal.params ->
  horizon:int ->
  predictor:(initial:float -> Predictor.t) ->
  Rcbr_traffic.Trace.t ->
  outcome * receding_stats
(** Receding-horizon controller over the beam trellis.  Per slot:
    account arrivals/service/loss exactly as {!run_custom}, feed the
    predictor, and — when no request is in flight and either
    [resolve_every_slot] (default false) or the backlog sits outside
    [b_low, b_high] — build a [horizon]-slot workload of forecast-rate
    arrivals with the live backlog folded into the first slot, solve it
    through {!Optimal.solve_raw} at [beam_width] (default 16) starting
    from the rate in force ([start_level], so staying is free and
    switching pays one renegotiation), and take the solution's first
    rate as the candidate request.  The request is issued under formula
    (8)'s direction rule (above [b_high] and the candidate is higher, or
    below [b_low] and lower); in [resolve_every_slot] mode the solver is
    trusted outright and any change is requested — pure MPC, at the
    price of chasing forecast noise.

    [opt]'s constraint must be a [Buffer_bound]; it is the {e planning}
    headroom (typically well under the physical [buffer] so forecast
    error has room to land), raised per window to the live backlog when
    the buffer is already past it.  At most one request is outstanding;
    [delay_slots]/[buffer] compose exactly as in {!run_custom}.
    [granularity], [flush_slots] and [ar_coefficient] of [params] are
    unused — the trellis replaces quantization, the backlog enters the
    window explicitly, and the predictor is the caller's.
    [outcome.predictions] holds the raw forecasts. *)
