module Trace = Rcbr_traffic.Trace
module Numeric = Rcbr_util.Numeric

type constraint_ = Buffer_bound of float | Delay_bound of int

type params = {
  grid : Rate_grid.t;
  reneg_cost : float;
  bandwidth_cost : float;
  constraint_ : constraint_;
}

type stats = {
  slots : int;
  expanded : int;
  max_frontier : int;
  pruned_by_lemma : int;
  pruned_by_cap : int;
}

(* Beam-search mode (see {!Beam} for the user-facing API): keep at most
   [width] nodes per stage, ranked by [weight - prior_weight * lp] where
   [lp] is the cumulative log prior of the node's level path under
   [log_init]/[log_trans].  [observed.(a).(b)] records whether the prior
   actually saw the a->b transition (vs the smoothing floor); such
   expansions are counted as prior hits. *)
type beam_opts = {
  width : int;
  log_init : float array;
  log_trans : float array array;
  observed : bool array array;
  prior_weight : float;
}

type beam_counters = { kept : int; dropped_by_beam : int; prior_hits : int }

exception Infeasible of int

(* Backpointer chain recording only the renegotiation instants, so the
   per-slot frontiers stay small and path reconstruction is O(#changes).
   This is the only boxed per-node state; everything else lives in
   structure-of-arrays frontiers below. *)
type change = { at : int; level : int; prev : change option }

(* Frontier: parallel arrays with strictly increasing buffer and
   strictly decreasing weight.  [buf]/[wt] are unboxed float arrays and
   the whole structure is reused across slots (grown to the running max,
   never shrunk), so the per-slot work allocates nothing but the
   [change] records of actual renegotiations. *)
type frontier = {
  mutable buf : float array;
  mutable wt : float array;
  mutable lvl : int array;
  mutable chg : change option array;
  mutable lp : float array;
      (* cumulative log prior of the level path; 0 when beam search is
         off — never read by the exact solver, so carrying it does not
         perturb any buf/wt numerics *)
  mutable len : int;
}

let fr_make cap =
  {
    buf = Array.make cap 0.;
    wt = Array.make cap 0.;
    lvl = Array.make cap 0;
    chg = Array.make cap None;
    lp = Array.make cap 0.;
    len = 0;
  }

let fr_ensure f n =
  let cap = Array.length f.buf in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let grow_f a = Array.append a (Array.make (cap' - cap) 0.) in
    f.buf <- grow_f f.buf;
    f.wt <- grow_f f.wt;
    f.lvl <- Array.append f.lvl (Array.make (cap' - cap) 0);
    f.chg <- Array.append f.chg (Array.make (cap' - cap) None);
    f.lp <- grow_f f.lp
  end

(* Buffer occupancies within one part in 10^9 are the same physical
   state.  Raw float equality here (the seed's behaviour) let paths
   differing only by rounding noise survive deduplication and bloat the
   frontier; the epsilon mirrors the NIU's grid-level comparison. *)
let same_buffer a b = Numeric.approx_equal ~eps:1e-9 a b

(* Append (b, w, l, c) under the Pareto discipline: callers feed nodes
   in buffer-ascending order and only when [w] beats the running weight
   minimum; a node sharing the top's buffer replaces it (the later node
   is the cheaper one). *)
let fr_push f b w l c p =
  if f.len > 0 && same_buffer f.buf.(f.len - 1) b then begin
    let i = f.len - 1 in
    f.buf.(i) <- b;
    f.wt.(i) <- w;
    f.lvl.(i) <- l;
    f.chg.(i) <- c;
    f.lp.(i) <- p
  end
  else begin
    fr_ensure f (f.len + 1);
    f.buf.(f.len) <- b;
    f.wt.(f.len) <- w;
    f.lvl.(f.len) <- l;
    f.chg.(f.len) <- c;
    f.lp.(f.len) <- p;
    f.len <- f.len + 1
  end

let bound_function constraint_ trace =
  match constraint_ with
  | Buffer_bound b ->
      assert (b >= 0.);
      fun _ -> b
  | Delay_bound d ->
      assert (d >= 0);
      (* Formula (5) as a time-varying backlog bound: data entering at
         slot s leaves by the end of slot s+d iff
         Q(t) <= A(t) - A(t-d), the arrivals of the last d slots. *)
      let prefix = Trace.prefix_sums trace in
      fun t -> prefix.(t + 1) -. prefix.(max 0 (t - d + 1))

let solve_raw ?(lemma_pruning = true) ?buffer_quantum ?frontier_cap ?beam
    ?start_level params trace =
  (match buffer_quantum with Some q -> assert (q > 0.) | None -> ());
  (match frontier_cap with Some c -> assert (c >= 2) | None -> ());
  let grid = params.grid in
  let m = Rate_grid.levels grid in
  let tau = Trace.slot_duration trace in
  let n = Trace.length trace in
  let k_cost = params.reneg_cost in
  assert (k_cost >= 0.);
  assert (params.bandwidth_cost > 0.);
  (match start_level with
  | Some s -> assert (s >= 0 && s < m)
  | None -> ());
  let beam_on, beam_width, log_init, log_trans, observed, prior_weight =
    match beam with
    | None -> (false, max_int, [||], [||], [||], 0.)
    | Some b ->
        assert (b.width >= 1);
        assert (Array.length b.log_init = m);
        assert (Array.length b.log_trans = m && Array.length b.observed = m);
        (true, b.width, b.log_init, b.log_trans, b.observed, b.prior_weight)
  in
  let drain = Array.init m (fun i -> Rate_grid.rate grid i *. tau) in
  let slot_cost = Array.map (fun d -> params.bandwidth_cost *. d) drain in
  let bound = bound_function params.constraint_ trace in
  let expanded = ref 0 and max_frontier = ref 0 in
  let pruned_by_lemma = ref 0 and pruned_by_cap = ref 0 in
  let beam_kept = ref 0 and beam_dropped = ref 0 and prior_hits = ref 0 in
  let cur = ref (Array.init m (fun _ -> fr_make 8)) in
  let nxt = ref (Array.init m (fun _ -> fr_make 8)) in
  let g = fr_make 8 in
  let same = fr_make 8 in
  let via = fr_make 8 in
  let heads = Array.make m 0 in
  (* Initial frontiers at slot 0: the first allocation is part of call
     setup and costs no renegotiation — except in receding-horizon use,
     where [start_level] is the rate already in force and every other
     level pays one renegotiation up front. *)
  let a0 = Trace.frame trace 0 in
  let b_max0 = bound 0 in
  Array.iteri
    (fun l f ->
      let b = Float.max 0. (a0 -. drain.(l)) in
      let w0 =
        match start_level with
        | Some s when s <> l -> slot_cost.(l) +. k_cost
        | _ -> slot_cost.(l)
      in
      let p0 = if beam_on then log_init.(l) else 0. in
      if b <= b_max0 then
        fr_push f b w0 l (Some { at = 0; level = l; prev = None }) p0)
    !cur;
  let check_feasible t fs =
    if Array.for_all (fun f -> f.len = 0) fs then raise (Infeasible t)
  in
  check_feasible 0 !cur;
  (* Pareto over the union of all level frontiers (each sorted): an
     m-way merge by ascending buffer (ties to the lowest level) with the
     weight-minimum filter applied on the fly. *)
  let global_frontier src dst =
    dst.len <- 0;
    Array.fill heads 0 m 0;
    let min_w = ref infinity in
    let continue_ = ref true in
    while !continue_ do
      let pick = ref (-1) in
      for l = m - 1 downto 0 do
        if
          heads.(l) < src.(l).len
          && (!pick < 0 || src.(l).buf.(heads.(l)) <= src.(!pick).buf.(heads.(!pick)))
        then pick := l
      done;
      if !pick < 0 then continue_ := false
      else begin
        let f = src.(!pick) in
        let i = heads.(!pick) in
        heads.(!pick) <- i + 1;
        if f.wt.(i) < !min_w then begin
          fr_push dst f.buf.(i) f.wt.(i) f.lvl.(i) f.chg.(i) f.lp.(i);
          min_w := f.wt.(i)
        end
      end
    done
  in
  (* Map a frontier through slot t at the target level, clamping the
     buffer at zero and discarding constraint violations.  The input
     order (buffer ascending, weight descending) is preserved; clamped
     entries share buffer 0 and the later (cheaper) one wins in
     [fr_push]. *)
  let shift_map ~t ~a ~b_max target_lvl extra src dst =
    dst.len <- 0;
    let d = drain.(target_lvl) in
    let cost = slot_cost.(target_lvl) +. extra in
    for i = 0 to src.len - 1 do
      let b = Float.max 0. (src.buf.(i) +. a -. d) in
      if b <= b_max then begin
        (* Optional approximation: snap the occupancy up to a grid
           point.  Rounding up keeps every kept path feasible while
           collapsing near-identical nodes, bounding the frontier. *)
        let b =
          match buffer_quantum with
          | None -> b
          | Some q -> Float.min b_max (q *. Float.ceil (b /. q))
        in
        incr expanded;
        let changes =
          if src.lvl.(i) = target_lvl && Float.equal extra 0. then src.chg.(i)
          else Some { at = t; level = target_lvl; prev = src.chg.(i) }
        in
        let p =
          if beam_on then begin
            if observed.(src.lvl.(i)).(target_lvl) then incr prior_hits;
            src.lp.(i) +. log_trans.(src.lvl.(i)).(target_lvl)
          end
          else 0.
        in
        fr_push dst b (src.wt.(i) +. cost) target_lvl changes p
      end
    done
  in
  (* Merge two buffer-ascending frontiers (ties favour the first) and
     keep the Pareto minima of weight. *)
  let merge_pareto a b dst =
    dst.len <- 0;
    let min_w = ref infinity in
    let i = ref 0 and j = ref 0 in
    while !i < a.len || !j < b.len do
      let from_a =
        !j >= b.len || (!i < a.len && a.buf.(!i) <= b.buf.(!j))
      in
      let f = if from_a then a else b in
      let k = if from_a then !i else !j in
      if from_a then incr i else incr j;
      if f.wt.(k) < !min_w then begin
        fr_push dst f.buf.(k) f.wt.(k) f.lvl.(k) f.chg.(k) f.lp.(k);
        min_w := f.wt.(k)
      end
    done
  in
  for t = 1 to n - 1 do
    let a = Trace.frame trace t in
    let b_max = bound t in
    global_frontier !cur g;
    let nxt_fs = !nxt in
    for l = 0 to m - 1 do
      shift_map ~t ~a ~b_max l 0. !cur.(l) same;
      shift_map ~t ~a ~b_max l k_cost g via;
      merge_pareto same via nxt_fs.(l)
    done;
    (* Lemma 1 cross-level pruning: drop a node when some node (any
       level) has no larger buffer and weight + K not larger.  Scanning
       the global frontier gives, for each buffer, the best weight
       available at or below it.  With K = 0 the rule degenerates to
       plain Pareto dominance, already enforced within each level. *)
    if lemma_pruning && k_cost > 0. then begin
      global_frontier nxt_fs via;
      (* [via] doubles as the post-step global frontier scratch. *)
      let g' = via in
      Array.iter
        (fun f ->
          if f.len > 0 then begin
            let gi = ref 0 in
            let best = ref infinity in
            let out = ref 0 in
            for i = 0 to f.len - 1 do
              while !gi < g'.len && g'.buf.(!gi) <= f.buf.(i) do
                (* A node never beats itself: +K makes the comparison
                   strict for same-level same-state entries. *)
                if g'.wt.(!gi) < !best then best := g'.wt.(!gi);
                incr gi
              done;
              if not (!best +. k_cost <= f.wt.(i)) then begin
                let o = !out in
                f.buf.(o) <- f.buf.(i);
                f.wt.(o) <- f.wt.(i);
                f.lvl.(o) <- f.lvl.(i);
                f.chg.(o) <- f.chg.(i);
                f.lp.(o) <- f.lp.(i);
                incr out
              end
            done;
            pruned_by_lemma := !pruned_by_lemma + f.len - !out;
            f.len <- !out
          end)
        nxt_fs
    end;
    (* Optional approximation: subsample oversized frontiers.  Retained
       nodes keep exact buffers and costs (feasibility is never
       compromised); only alternative paths are dropped, so the error
       does not compound across slots.  The lowest-buffer node (most
       future headroom) and lowest-weight node (cheapest so far) always
       survive. *)
    (match frontier_cap with
    | None -> ()
    | Some cap ->
        Array.iter
          (fun f ->
            if f.len > cap then begin
              for i = 0 to cap - 1 do
                let idx = i * (f.len - 1) / (cap - 1) in
                f.buf.(i) <- f.buf.(idx);
                f.wt.(i) <- f.wt.(idx);
                f.lvl.(i) <- f.lvl.(idx);
                f.chg.(i) <- f.chg.(idx);
                f.lp.(i) <- f.lp.(idx)
              done;
              pruned_by_cap := !pruned_by_cap + f.len - cap;
              f.len <- cap
            end)
          nxt_fs);
    (* Beam selection: keep the [beam_width] best nodes across all
       levels by score = weight - prior_weight * log-prior, plus — for
       feasibility — the globally lowest-buffer node.  Buffer evolution
       [b' = max 0 (b + a - d)] is monotone in [b], so the minimum
       reachable buffer under the beam equals the exact solver's at
       every slot (the min-buffer node's successors include the next
       min), and the beam raises [Infeasible] iff the exact solver
       does.  Each per-level frontier is compacted to a subsequence, so
       the Pareto invariants (buffer ascending, weight descending) are
       preserved. *)
    (if beam_on then
       let total = Array.fold_left (fun acc f -> acc + f.len) 0 nxt_fs in
       if total > beam_width then begin
         let score = Array.make total 0. in
         (* Globally lowest-buffer candidate, first-in-scan-order on
            ties: deterministic, independent of the score ordering. *)
         let forced = ref 0 and min_buf = ref infinity in
         let c = ref 0 in
         Array.iter
           (fun f ->
             for i = 0 to f.len - 1 do
               score.(!c) <- f.wt.(i) -. (prior_weight *. f.lp.(i));
               if f.buf.(i) < !min_buf then begin
                 min_buf := f.buf.(i);
                 forced := !c
               end;
               incr c
             done)
           nxt_fs;
         let order = Array.init total (fun i -> i) in
         Array.sort
           (fun a b ->
             let s = Float.compare score.(a) score.(b) in
             if s <> 0 then s else compare (a : int) b)
           order;
         let keep = Array.make total false in
         keep.(!forced) <- true;
         (* The forced node takes one of the [beam_width] slots; the
            rest go to the best-scoring candidates in order. *)
         let slots_left = ref (beam_width - 1) in
         Array.iter
           (fun i ->
             if !slots_left > 0 && not keep.(i) then begin
               keep.(i) <- true;
               decr slots_left
             end)
           order;
         let c = ref 0 in
         Array.iter
           (fun f ->
             let out = ref 0 in
             for i = 0 to f.len - 1 do
               if keep.(!c) then begin
                 let o = !out in
                 f.buf.(o) <- f.buf.(i);
                 f.wt.(o) <- f.wt.(i);
                 f.lvl.(o) <- f.lvl.(i);
                 f.chg.(o) <- f.chg.(i);
                 f.lp.(o) <- f.lp.(i);
                 incr out
               end;
               incr c
             done;
             f.len <- !out)
           nxt_fs;
         beam_kept := !beam_kept + beam_width;
         beam_dropped := !beam_dropped + total - beam_width
       end
       else beam_kept := !beam_kept + total);
    check_feasible t nxt_fs;
    let total = Array.fold_left (fun acc f -> acc + f.len) 0 nxt_fs in
    if total > !max_frontier then max_frontier := total;
    (* Recycle the previous slot's frontiers as the next scratch. *)
    let tmp = !cur in
    cur := !nxt;
    nxt := tmp
  done;
  (* Best full path: minimum weight over every surviving node. *)
  let best_w = ref infinity and best_c = ref None and found = ref false in
  Array.iter
    (fun f ->
      for i = 0 to f.len - 1 do
        if (not !found) || f.wt.(i) < !best_w then begin
          found := true;
          best_w := f.wt.(i);
          best_c := f.chg.(i)
        end
      done)
    !cur;
  if not !found then raise (Infeasible n);
  let rec collect acc = function
    | None -> acc
    | Some { at; level; prev } ->
        collect
          ({ Schedule.start_slot = at; rate = Rate_grid.rate grid level } :: acc)
          prev
  in
  let segments = collect [] !best_c in
  let schedule = Schedule.create ~fps:(Trace.fps trace) ~n_slots:n segments in
  ( schedule,
    {
      slots = n;
      expanded = !expanded;
      max_frontier = !max_frontier;
      pruned_by_lemma = !pruned_by_lemma;
      pruned_by_cap = !pruned_by_cap;
    },
    {
      kept = !beam_kept;
      dropped_by_beam = !beam_dropped;
      prior_hits = !prior_hits;
    } )

let solve_with_stats ?lemma_pruning ?buffer_quantum ?frontier_cap params trace =
  let schedule, stats, _ =
    solve_raw ?lemma_pruning ?buffer_quantum ?frontier_cap params trace
  in
  (schedule, stats)

let solve params trace = fst (solve_with_stats params trace)

(* The zero-loss CBR rate depends only on (trace, buffer); the Fig. 2
   cost-ratio sweep calls [default_params] once per alpha on the same
   trace, so memoize the bisection.  Keyed by physical trace identity;
   guarded by a mutex so pool workers can share the cache (a lost race
   recomputes the same deterministic value, never a different one). *)
(* lint: allow R001 — mutex-guarded memo cache; a lost race recomputes
   the same deterministic value, never a different one *)
let needed_rate_cache : (Trace.t * float * float) list ref = ref []
let needed_rate_mutex = Mutex.create ()

let needed_rate ~trace ~buffer =
  let lookup () =
    List.find_opt
      (fun (t, b, _) -> t == trace && Float.equal b buffer)
      !needed_rate_cache
  in
  Mutex.lock needed_rate_mutex;
  let hit = lookup () in
  Mutex.unlock needed_rate_mutex;
  match hit with
  | Some (_, _, r) -> r
  | None ->
      let r =
        Rcbr_queue.Sigma_rho.min_rate ~trace ~buffer ~target_loss:0. ()
      in
      Mutex.lock needed_rate_mutex;
      let keep = List.filteri (fun i _ -> i < 15) !needed_rate_cache in
      needed_rate_cache := (trace, buffer, r) :: keep;
      Mutex.unlock needed_rate_mutex;
      r

let default_params ?(levels = 20) ?(buffer = 300_000.) ~cost_ratio trace =
  (* The grid must be able to drain the worst burst within the buffer
     bound; the zero-loss CBR rate for this buffer is exactly that. *)
  let needed = needed_rate ~trace ~buffer in
  let base = Rate_grid.uniform ~lo:48_000. ~hi:2_400_000. ~levels in
  let grid = Rate_grid.covering base ~peak:(needed *. 1.0001) in
  {
    grid;
    reneg_cost = cost_ratio;
    bandwidth_cost = 1.;
    constraint_ = Buffer_bound buffer;
  }
