module Trace = Rcbr_traffic.Trace

type policy = Settle | Retry of int | Requantize of float | Reserve_peak

type result = {
  bits_offered : float;
  bits_lost : float;
  quality : float;
  attempts : int;
  failures : int;
  max_backlog : float;
  mean_reserved : float;
}

let grant_with_probability rng p ~slot:_ ~old_rate ~new_rate =
  new_rate <= old_rate || Rcbr_util.Rng.float rng < p

let simulate ~policy ~grant ~buffer ~trace schedule =
  if Trace.length trace <> Schedule.n_slots schedule then
    invalid_arg "Adaptation.simulate: length mismatch";
  if Trace.fps trace <> Schedule.fps schedule then
    invalid_arg "Adaptation.simulate: fps mismatch";
  assert (buffer >= 0.);
  (match policy with
  | Requantize q -> assert (q > 0. && q <= 1.)
  | Retry d -> assert (d >= 1)
  | Settle | Reserve_peak -> ());
  let n = Trace.length trace in
  let tau = Trace.slot_duration trace in
  let desired = Schedule.to_rates schedule in
  let attempts = ref 0 and failures = ref 0 in
  let granted = ref desired.(0) in
  (match policy with
  | Reserve_peak -> granted := Schedule.peak_rate schedule
  | Settle | Retry _ | Requantize _ -> ());
  (* [wanted] tracks the latest desired rate whose request failed; the
     Retry policy re-issues it periodically. *)
  let wanted = ref None in
  let retry_at = ref max_int in
  let backlog = ref 0. and max_backlog = ref 0. in
  let offered = ref 0. and lost = ref 0. and delivered_quality_bits = ref 0. in
  let reserved_integral = ref 0. in
  let request slot rate =
    incr attempts;
    if grant ~slot ~old_rate:!granted ~new_rate:rate then begin
      granted := rate;
      wanted := None;
      true
    end
    else begin
      incr failures;
      wanted := Some rate;
      (match policy with
      | Retry d -> retry_at := slot + d
      | Settle | Requantize _ | Reserve_peak -> ());
      false
    end
  in
  for t = 0 to n - 1 do
    (* Renegotiation instants: where the desired rate changes. *)
    (match policy with
    | Reserve_peak -> ()
    | Settle | Retry _ | Requantize _ ->
        if t > 0 && desired.(t) <> desired.(t - 1) then
          ignore (request t desired.(t))
        else begin
          match (policy, !wanted) with
          | Retry _, Some rate when t >= !retry_at -> ignore (request t rate)
          | _ -> ()
        end);
    let full = Trace.frame trace t in
    offered := !offered +. full;
    (* Requantization scales the frames the codec emits while the
       granted rate lags the desired one. *)
    let scale =
      match policy with
      | Requantize floor_q when !granted < desired.(t) && desired.(t) > 0. ->
          Float.max floor_q (!granted /. desired.(t))
      | Requantize _ | Settle | Retry _ | Reserve_peak -> 1.
    in
    let arriving = full *. scale in
    delivered_quality_bits := !delivered_quality_bits +. (full *. scale);
    let net = !backlog +. arriving -. (!granted *. tau) in
    backlog := Float.min buffer (Float.max 0. net);
    let overflow = Float.max 0. (net -. buffer) in
    lost := !lost +. overflow;
    delivered_quality_bits := !delivered_quality_bits -. overflow;
    if !backlog > !max_backlog then max_backlog := !backlog;
    reserved_integral := !reserved_integral +. (!granted *. tau)
  done;
  {
    bits_offered = !offered;
    bits_lost = !lost;
    quality = (if Float.equal !offered 0. then 1. else !delivered_quality_bits /. !offered);
    attempts = !attempts;
    failures = !failures;
    max_backlog = !max_backlog;
    mean_reserved = !reserved_integral /. (float_of_int n *. tau);
  }
