module Trace = Rcbr_traffic.Trace
module Fluid = Rcbr_queue.Fluid

type segment = { start_slot : int; rate : float }
type t = { fps : float; n_slots : int; segments : segment array }

let create ~fps ~n_slots segs =
  if fps <= 0. then invalid_arg "Schedule.create: fps";
  if n_slots <= 0 then invalid_arg "Schedule.create: n_slots";
  (match segs with
  | [] -> invalid_arg "Schedule.create: no segments"
  | first :: _ ->
      if first.start_slot <> 0 then
        invalid_arg "Schedule.create: first segment must start at slot 0");
  let rec check = function
    | [] -> ()
    | [ s ] ->
        if s.start_slot >= n_slots then
          invalid_arg "Schedule.create: segment beyond n_slots";
        if s.rate < 0. then invalid_arg "Schedule.create: negative rate"
    | a :: (b :: _ as rest) ->
        if a.rate < 0. then invalid_arg "Schedule.create: negative rate";
        if b.start_slot <= a.start_slot then
          invalid_arg "Schedule.create: segments not increasing";
        check rest
  in
  check segs;
  (* Merge runs of equal rates. *)
  let merged =
    List.fold_left
      (fun acc s ->
        match acc with
        | prev :: _ when prev.rate = s.rate -> acc
        | _ -> s :: acc)
      [] segs
  in
  { fps; n_slots; segments = Array.of_list (List.rev merged) }

let constant ~fps ~n_slots rate = create ~fps ~n_slots [ { start_slot = 0; rate } ]

let fps t = t.fps
let n_slots t = t.n_slots
let segments t = Array.copy t.segments
let duration t = float_of_int t.n_slots /. t.fps

let rate_at t slot =
  assert (slot >= 0 && slot < t.n_slots);
  (* Last segment with start_slot <= slot. *)
  let lo = ref 0 and hi = ref (Array.length t.segments - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.segments.(mid).start_slot <= slot then lo := mid else hi := mid - 1
  done;
  t.segments.(!lo).rate

let to_rates t =
  let out = Array.make t.n_slots 0. in
  let nseg = Array.length t.segments in
  Array.iteri
    (fun i seg ->
      let stop =
        if i + 1 < nseg then t.segments.(i + 1).start_slot else t.n_slots
      in
      for s = seg.start_slot to stop - 1 do
        out.(s) <- seg.rate
      done)
    t.segments;
  out

let n_renegotiations t = Array.length t.segments - 1

let mean_renegotiation_interval t =
  duration t /. float_of_int (n_renegotiations t + 1)

let segment_lengths t =
  let nseg = Array.length t.segments in
  Array.mapi
    (fun i seg ->
      let stop =
        if i + 1 < nseg then t.segments.(i + 1).start_slot else t.n_slots
      in
      stop - seg.start_slot)
    t.segments

let mean_rate t =
  let lengths = segment_lengths t in
  let acc = ref 0. in
  Array.iteri
    (fun i seg -> acc := !acc +. (float_of_int lengths.(i) *. seg.rate))
    t.segments;
  !acc /. float_of_int t.n_slots

let peak_rate t = Array.fold_left (fun acc s -> max acc s.rate) 0. t.segments

let cost t ~reneg_cost ~bandwidth_cost =
  let service_bits = mean_rate t *. duration t in
  (reneg_cost *. float_of_int (n_renegotiations t))
  +. (bandwidth_cost *. service_bits)

let bandwidth_efficiency t ~trace =
  Trace.mean_rate trace /. mean_rate t

let marginal t =
  let lengths = segment_lengths t in
  (* Collapse equal rates across non-adjacent segments. *)
  let table = Hashtbl.create 16 in
  Array.iteri
    (fun i seg ->
      let prev = try Hashtbl.find table seg.rate with Not_found -> 0 in
      Hashtbl.replace table seg.rate (prev + lengths.(i)))
    t.segments;
  let total = float_of_int t.n_slots in
  (* Sorted-key traversal: ascending rate, exactly the order the old
     fold-then-sort produced (rates are unique keys). *)
  Rcbr_util.Tables.sorted_bindings ~compare:Float.compare table
  |> List.map (fun (rate, slots) -> (float_of_int slots /. total, rate))
  |> Array.of_list

let shift t ~slots =
  let rates = to_rates t in
  let n = t.n_slots in
  let k = ((slots mod n) + n) mod n in
  let shifted = Array.init n (fun i -> rates.((i + k) mod n)) in
  (* Rebuild segments from the shifted rate array. *)
  let segs = ref [] in
  for i = n - 1 downto 0 do
    match !segs with
    | { start_slot = _; rate } :: _ when rate = shifted.(i) ->
        segs := { start_slot = i; rate } :: List.tl !segs
    | _ -> segs := { start_slot = i; rate = shifted.(i) } :: !segs
  done;
  create ~fps:t.fps ~n_slots:n !segs

let simulate_buffer t ~trace ~capacity =
  if Trace.length trace <> t.n_slots then
    invalid_arg "Schedule.simulate_buffer: length mismatch";
  if Trace.fps trace <> t.fps then
    invalid_arg "Schedule.simulate_buffer: fps mismatch";
  let rates = to_rates t in
  Fluid.run_schedule ~capacity ~rate_per_slot:(fun i -> rates.(i)) trace

let pp fmt t =
  Format.fprintf fmt
    "@[<v>schedule: %d slots @ %.0f fps, %d renegotiations@,\
     mean rate %.1f kb/s, peak %.1f kb/s, mean interval %.2f s@]"
    t.n_slots t.fps (n_renegotiations t)
    (mean_rate t /. 1e3)
    (peak_rate t /. 1e3)
    (mean_renegotiation_interval t)
