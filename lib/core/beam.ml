module Trace = Rcbr_traffic.Trace
module Histogram = Rcbr_util.Histogram
module Chain = Rcbr_markov.Chain

type prior =
  | Uniform
  | Table of {
      levels : int;
      init : Histogram.t;
      trans : Histogram.t array;
    }

(* Smoothing floor for unseen transitions: a path through an unobserved
   transition pays log(1e-9) ~ -20.7 nats, steep but finite, so the beam
   can still follow the traffic off the prior's support. *)
let log_floor = 1e-9

let level_of grid tau trace t =
  Rate_grid.index_up grid (Trace.frame trace t /. tau)

let of_trace ~grid trace =
  let m = Rate_grid.levels grid in
  let tau = Trace.slot_duration trace in
  let init = Histogram.create ~levels:m in
  let trans = Array.init m (fun _ -> Histogram.create ~levels:m) in
  let n = Trace.length trace in
  let prev = ref (level_of grid tau trace 0) in
  Histogram.add init !prev 1.;
  for t = 1 to n - 1 do
    let l = level_of grid tau trace t in
    Histogram.add trans.(!prev) l 1.;
    Histogram.add init l 1.;
    prev := l
  done;
  Table { levels = m; init; trans }

let of_chain ~grid ~rates chain =
  let m = Rate_grid.levels grid in
  let ns = Chain.n_states chain in
  if Array.length rates <> ns then
    invalid_arg "Beam.of_chain: rates length <> chain states";
  let pi = Chain.stationary chain in
  let lvl = Array.map (Rate_grid.index_up grid) rates in
  let init = Histogram.create ~levels:m in
  let trans = Array.init m (fun _ -> Histogram.create ~levels:m) in
  for s = 0 to ns - 1 do
    Histogram.add init lvl.(s) pi.(s);
    for s' = 0 to ns - 1 do
      let p = pi.(s) *. Chain.prob chain s s' in
      if p > 0. then Histogram.add trans.(lvl.(s)) lvl.(s') p
    done
  done;
  Table { levels = m; init; trans }

let compile ~grid ~beam_width ~prior_weight prior =
  if beam_width < 1 then invalid_arg "Beam.compile: beam_width < 1";
  let m = Rate_grid.levels grid in
  match prior with
  | Uniform ->
      (* Every transition equally likely: each stage-t node carries the
         same cumulative log prior, so the ranking degenerates to plain
         path weight and nothing counts as a prior hit. *)
      let u = -.Float.log (float_of_int m) in
      {
        Optimal.width = beam_width;
        log_init = Array.make m u;
        log_trans = Array.init m (fun _ -> Array.make m u);
        observed = Array.init m (fun _ -> Array.make m false);
        prior_weight;
      }
  | Table { levels; init; trans } ->
      if levels <> m then
        invalid_arg "Beam.compile: prior trained on a different grid size";
      {
        Optimal.width = beam_width;
        log_init =
          Array.init m (fun l -> Histogram.log_mass ~floor:log_floor init l);
        log_trans =
          Array.init m (fun a ->
              Array.init m (fun b ->
                  Histogram.log_mass ~floor:log_floor trans.(a) b));
        observed =
          Array.init m (fun a ->
              Array.init m (fun b -> Histogram.weight trans.(a) b > 0.));
        prior_weight;
      }

let default_prior_weight params trace =
  (* 0.3 nats of improbability per mean slot of allocated bandwidth:
     strong enough to steer ranking between near-equal-cost paths, too
     weak to override a clear cost advantage.  At full strength the
     floor penalty on prior-unseen transitions (~20.7 nats) dwarfs the
     renegotiation cost and the beam over-tracks the training trace;
     the 0.3 calibration is measured in EXPERIMENTS.md (beam). *)
  0.3 *. params.Optimal.bandwidth_cost *. Trace.mean_rate trace
  *. Trace.slot_duration trace

type stats = {
  base : Optimal.stats;
  kept : int;
  dropped_by_beam : int;
  prior_hits : int;
}

let solve_with_stats ?lemma_pruning ?buffer_quantum ?frontier_cap ?prior_weight
    ?start_level ~beam_width ~prior params trace =
  let prior_weight =
    match prior_weight with
    | Some w -> w
    | None -> default_prior_weight params trace
  in
  let beam = compile ~grid:params.Optimal.grid ~beam_width ~prior_weight prior in
  let schedule, base, c =
    Optimal.solve_raw ?lemma_pruning ?buffer_quantum ?frontier_cap ~beam
      ?start_level params trace
  in
  ( schedule,
    {
      base;
      kept = c.Optimal.kept;
      dropped_by_beam = c.Optimal.dropped_by_beam;
      prior_hits = c.Optimal.prior_hits;
    } )

let solve ?lemma_pruning ?buffer_quantum ?frontier_cap ?prior_weight
    ?start_level ~beam_width ~prior params trace =
  fst
    (solve_with_stats ?lemma_pruning ?buffer_quantum ?frontier_cap
       ?prior_weight ?start_level ~beam_width ~prior params trace)

let sweep ?lemma_pruning ?buffer_quantum ?frontier_cap ?prior_weight
    ?start_level ~widths ~prior params trace =
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | [ _ ] | [] -> true
  in
  (match widths with
  | [] -> invalid_arg "Beam.sweep: empty width list"
  | w :: _ when w < 1 -> invalid_arg "Beam.sweep: beam_width < 1"
  | _ when not (ascending widths) ->
      invalid_arg "Beam.sweep: widths must be strictly ascending"
  | _ -> ());
  let prior_weight =
    match prior_weight with
    | Some w -> w
    | None -> default_prior_weight params trace
  in
  (* One compilation serves every width: only the cutoff differs. *)
  let opts = compile ~grid:params.Optimal.grid ~beam_width:1 ~prior_weight prior in
  let cost s =
    Schedule.cost s ~reneg_cost:params.Optimal.reneg_cost
      ~bandwidth_cost:params.Optimal.bandwidth_cost
  in
  let best = ref None in
  List.map
    (fun w ->
      let schedule, base, c =
        Optimal.solve_raw ?lemma_pruning ?buffer_quantum ?frontier_cap
          ~beam:{ opts with Optimal.width = w } ?start_level params trace
      in
      let stats =
        {
          base;
          kept = c.Optimal.kept;
          dropped_by_beam = c.Optimal.dropped_by_beam;
          prior_hits = c.Optimal.prior_hits;
        }
      in
      (* Anytime semantics: report the cheapest schedule found at any
         width up to this one.  Raw beam selection is not nested across
         widths — a wider beam can genuinely lose a path a narrower one
         kept (measured in ~60% of random instances, DESIGN.md §13) —
         so only the running best is monotone in the width. *)
      let c_new = cost schedule in
      (match !best with
      | Some (c_best, _) when c_best <= c_new -> ()
      | _ -> best := Some (c_new, schedule));
      let _, best_schedule = Option.get !best in
      (w, best_schedule, stats))
    widths
