(** Optimal offline renegotiation schedules (Section IV-A).

    Given complete knowledge of the arrival process, find the
    piecewise-CBR service-rate function minimizing

    {v cost = reneg_cost * (#rate changes)
         + bandwidth_cost * (total service bits) v}

    subject to the end-system buffer never exceeding its bound (or, in
    the delay variant, every bit leaving within a deadline — formula
    (5)).  The solver is the paper's Viterbi-like shortest path on the
    trellis of (time, rate level, buffer occupancy) nodes, with the
    Lemma 1 dominance rule: a node is pruned when another node exists
    with no larger buffer and weight smaller even after paying one extra
    renegotiation — which prunes {e across} rate levels, not only within
    them.

    The implementation keeps, per rate level, the Pareto frontier of
    (buffer, weight) pairs plus a global frontier for the cross-level
    rule, so each slot costs O(levels x frontier size). *)

type constraint_ =
  | Buffer_bound of float  (** maximum backlog in bits, formula (2) *)
  | Delay_bound of int  (** maximum queueing delay in slots, formula (5) *)

type params = {
  grid : Rate_grid.t;
  reneg_cost : float;  (** K >= 0, cost per renegotiation *)
  bandwidth_cost : float;  (** c > 0, cost per bit of allocated service *)
  constraint_ : constraint_;
}

type stats = {
  slots : int;
  expanded : int;  (** candidate nodes generated over the whole run *)
  max_frontier : int;  (** peak number of surviving nodes in any slot *)
  pruned_by_lemma : int;
      (** nodes dropped by the cross-level Lemma 1 rule *)
  pruned_by_cap : int;  (** nodes dropped by [frontier_cap] subsampling *)
}

exception Infeasible of int
(** No rate level can respect the constraint at the given slot (the
    grid's top rate is too small for the workload). *)

val solve : params -> Rcbr_traffic.Trace.t -> Schedule.t
(** May raise {!Infeasible}. *)

val solve_with_stats :
  ?lemma_pruning:bool ->
  ?buffer_quantum:float ->
  ?frontier_cap:int ->
  params ->
  Rcbr_traffic.Trace.t ->
  Schedule.t * stats
(** [lemma_pruning] (default true) toggles the cross-level Lemma 1 rule;
    with it off only plain per-level Pareto pruning applies — same
    optimum, larger frontiers.  [buffer_quantum] (default: exact) snaps
    buffer occupancies {e up} to multiples of the given quantum, trading
    a bounded amount of optimality (never feasibility) for a bounded
    frontier — note the rounding error compounds across slots.
    [frontier_cap] (default: unbounded) instead subsamples each level's
    Pareto frontier down to the given size: retained paths keep exact
    buffers and costs, so feasibility is never compromised and the error
    does not compound; this is the recommended knob when small cost
    ratios make the exact frontier explode (the paper reports the same
    blowup).  All three knobs are exercised by the ablation
    benchmarks. *)

(** {2 Beam-search internals}

    The user-facing beam API is {!Beam}; the raw entry point lives here
    so the beam shares this module's structure-of-arrays frontier and
    pruning machinery verbatim (with the beam off, [solve_raw] {e is}
    [solve_with_stats], bit for bit). *)

type beam_opts = {
  width : int;  (** max surviving nodes per stage, across all levels *)
  log_init : float array;  (** per-level log prior of the first slot *)
  log_trans : float array array;
      (** [log_trans.(a).(b)]: log prior of an a->b level transition *)
  observed : bool array array;
      (** whether the prior actually saw the transition (vs the
          smoothing floor); hits are counted per expansion *)
  prior_weight : float;
      (** cost units per nat of log prior in the ranking score
          [weight - prior_weight * log_prior] *)
}

type beam_counters = {
  kept : int;  (** nodes surviving beam selection, summed over stages *)
  dropped_by_beam : int;  (** nodes cut by beam selection *)
  prior_hits : int;  (** expansions along prior-observed transitions *)
}

val solve_raw :
  ?lemma_pruning:bool ->
  ?buffer_quantum:float ->
  ?frontier_cap:int ->
  ?beam:beam_opts ->
  ?start_level:int ->
  params ->
  Rcbr_traffic.Trace.t ->
  Schedule.t * stats * beam_counters
(** [solve_with_stats] plus two extensions used by {!Beam} and the
    receding-horizon controller: [beam] keeps only the [width]
    best-scoring nodes per stage (the globally lowest-buffer node is
    always retained, so feasibility is decided exactly — see DESIGN.md
    §13), and [start_level] marks one grid level as the rate already in
    force, charging every {e other} initial level one renegotiation.
    Without [beam] the counters are [kept = 0] (no selection ran). *)

val default_params :
  ?levels:int -> ?buffer:float -> cost_ratio:float -> Rcbr_traffic.Trace.t -> params
(** Paper-flavoured defaults: a uniform grid of [levels] (default 20)
    rates from 48 kb/s to max(2.4 Mb/s, a rate covering the trace for
    the given buffer), buffer bound [buffer] (default 300 kb), unit
    bandwidth cost and [reneg_cost = cost_ratio] (the paper's alpha
    = K/c, in bits). *)
